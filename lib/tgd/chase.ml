(* The chase (Section II.C).

   The paper's chase is "lazy": a pair (T, b̄) fires only when the body
   matches at b̄ (condition ¬) and no head witness exists yet (condition ­),
   both checked against the *current* structure.  [chase_stage] performs one
   pass of the stage procedure of Section II.C: it enumerates the pairs
   (T, b̄) over the stage-start structure, then applies the surviving
   triggers in order, re-checking ­ as the structure grows.

   Three trigger-discovery engines implement that stage semantics:

     [`Stage]     re-enumerates every body homomorphism of every TGD
                  against the whole structure at every stage;
     [`Seminaive] (default) matches each body only against homomorphisms
                  using at least one fact added since the previous stage
                  (the delta), exactly like semi-naive Datalog evaluation;
     [`Par]       semi-naive discovery fanned out over a domain pool:
                  workers enumerate body matches over disjoint delta
                  shards, the matches are merged in canonical sort order,
                  and firing stays sequential.

   Delta-restriction is sound for the lazy chase because both conditions
   are monotone in the structure: a body match wholly inside old facts was
   already discovered at an earlier stage, where it either fired (so its
   head witness now exists) or was withheld because condition ­ held (and
   head witnesses never disappear).  Either way it is inactive forever,
   so only delta-touching matches can yield new triggers.  Within a stage
   every engine applies the surviving triggers in the same canonical order
   (TGD index, then frontier tuple), so they build identical structures,
   fresh element ids included.

   Each dependency's body, delta family and head are compiled once per
   run into {!Hom.Plan}s; every stage re-evaluates the plans instead of
   re-deriving atom orders and pin choices. *)

open Relational

let c_matches = Obs.Metrics.counter "tgd.body_matches"
let c_considered = Obs.Metrics.counter "tgd.triggers_considered"
let c_firings = Obs.Metrics.counter "tgd.firings"
let c_head_checks = Obs.Metrics.counter "tgd.head_checks"
let c_merge_ms = Obs.Metrics.counter "par.merge_ms"
let h_delta = Obs.Metrics.histogram "tgd.delta_size"

type stats = {
  stages : int;              (* stages executed *)
  applications : int;        (* TGD firings *)
  triggers_considered : int; (* distinct (TGD, frontier) pairs examined *)
  body_matches : int;        (* raw body matches, before frontier dedup *)
  fixpoint : bool;           (* no trigger was active at the last stage *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "stages=%d applications=%d triggers_considered=%d body_matches=%d \
     fixpoint=%b"
    s.stages s.applications s.triggers_considered s.body_matches s.fixpoint

(* Restrict a body binding to the frontier of the TGD: the b̄ of the paper. *)
let frontier_binding dep binding =
  let fr = Dep.frontier dep in
  Term.Var_map.filter (fun x _ -> Term.Var_set.mem x fr) binding

(* Condition ­: D ⊨ ∃z̄ Ψ(z̄, b̄). *)
let head_satisfied d dep fb =
  if !Obs.metrics_on then Obs.Metrics.incr c_head_checks;
  Hom.exists ~init:fb d (Dep.head dep)

(* Frontier access precomputed at the slot level: the frontier variables
   in ascending name order (the canonical key order — [Var_set.elements]
   and [Var_map.bindings] agree on it), their slots in the relevant body
   layout, and their slots in the head plan.  The per-match hot path then
   projects an int-array frontier key straight off the evaluator's slot
   array and never touches a [Var_map]; name bindings are rebuilt only
   for triggers that actually fire. *)
type frontier_info = {
  fr_names : string array;
  fr_slots : int array;  (* body-plan or family layout *)
  fr_head : int array;   (* head-plan slots; -1 if the head omits the var *)
}

let frontier_info dep ~slot_of head_plan =
  let fr_names = Array.of_list (Term.Var_set.elements (Dep.frontier dep)) in
  let fr_slots =
    Array.map
      (fun x ->
        match slot_of x with
        | Some s -> s
        | None -> invalid_arg "frontier variable missing from body plan")
      fr_names
  in
  let fr_head =
    Array.map
      (fun x -> Option.value ~default:(-1) (Hom.Plan.slot head_plan x))
      fr_names
  in
  { fr_names; fr_slots; fr_head }

(* A dependency with its compiled plans.  All are lazy so each engine
   only pays for the plans it evaluates (the stage engine never compiles
   the delta family, the delta engines never compile the full body
   plan).  [fr_stage]/[fr_delta] carry the frontier slot projections for
   the two body layouts. *)
type cdep = {
  dep : Dep.t;
  body_plan : Hom.Plan.t Lazy.t;
  body_family : Hom.Plan.family Lazy.t;
  head_plan : Hom.Plan.t Lazy.t;
  fr_stage : frontier_info Lazy.t;
  fr_delta : frontier_info Lazy.t;
}

let compile_dep dep =
  let body_plan = lazy (Hom.Plan.compile (Dep.body dep)) in
  let body_family = lazy (Hom.Plan.compile_family (Dep.body dep)) in
  let head_plan = lazy (Hom.Plan.compile (Dep.head dep)) in
  {
    dep;
    body_plan;
    body_family;
    head_plan;
    fr_stage =
      lazy
        (frontier_info dep
           ~slot_of:(Hom.Plan.slot (Lazy.force body_plan))
           (Lazy.force head_plan));
    fr_delta =
      lazy
        (frontier_info dep
           ~slot_of:(Hom.Plan.family_slot (Lazy.force body_family))
           (Lazy.force head_plan));
  }

(* The frontier key of a body match: the frontier elements in canonical
   (ascending variable name) order.  Same-dependency keys compare exactly
   like the former sorted [(var, elem)] association lists, so the
   canonical firing order is unchanged. *)
let key_of fi slots = Array.map (fun s -> Array.unsafe_get slots s) fi.fr_slots

let binding_of_key fi key =
  let m = ref Term.Var_map.empty in
  Array.iteri (fun i x -> m := Term.Var_map.add x key.(i) !m) fi.fr_names;
  !m

(* Condition ­ straight from a frontier key: the head plan is seeded by
   slot, skipping the binding round-trip. *)
let head_witnessed d cd fi key =
  if !Obs.metrics_on then Obs.Metrics.incr c_head_checks;
  let init = ref [] in
  Array.iteri
    (fun i s -> if s >= 0 then init := (s, key.(i)) :: !init)
    fi.fr_head;
  Hom.Plan.exists_slots ~init:!init (Lazy.force cd.head_plan) d

(* Fire (T, b̄): create a fresh copy of A[Ψ] identified with D along b̄. *)
let apply d dep fb =
  let fresh_names = Hashtbl.create 8 in
  let elem_of = function
    | Term.Cst c -> Structure.constant d c
    | Term.Var x -> (
        match Term.Var_map.find_opt x fb with
        | Some e -> e
        | None -> (
            match Hashtbl.find_opt fresh_names x with
            | Some e -> e
            | None ->
                let e = Structure.fresh d in
                Hashtbl.replace fresh_names x e;
                e))
  in
  List.iter
    (fun atom ->
      let args = Array.of_list (List.map elem_of (Atom.args atom)) in
      ignore (Structure.add_fact d (Fact.make (Atom.sym atom) args)))
    (Dep.head dep)

module Binding_key = struct
  (* Canonical key for a frontier binding, to deduplicate triggers:
     [Var_map.bindings] already yields the pairs in ascending variable
     order, so no extra sort is needed. *)
  let of_binding fb = Term.Var_map.bindings fb
end

(* Sort a stage's surviving triggers into the canonical firing order
   (TGD index, then frontier key), shared by all engines so their fresh
   elements coincide.  Keys of one dependency are equal-length int
   arrays, compared element-wise by the polymorphic compare — the same
   order the sorted association lists used to induce. *)
let sort_triggers triggers =
  List.sort
    (fun (i1, _, _, k1) (i2, _, _, k2) ->
      let c = Int.compare i1 i2 in
      if c <> 0 then c else compare k1 k2)
    triggers

let triggers_of out =
  List.map (fun (_, cd, fi, key) -> (cd, fi, key)) (sort_triggers out)

(* Examine one deduplicated body match: first-time frontier keys count as
   considerations; those with no head witness survive as triggers. *)
let consider_match ~seen ~considered d di cd fi key out =
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.replace seen key ();
    incr considered;
    if !Obs.metrics_on then Obs.Metrics.incr c_considered;
    if not (head_witnessed d cd fi key) then out := (di, cd, fi, key) :: !out
  end

(* Collect the stage's triggers: deduplicate body matches per TGD by
   frontier key, drop those whose head is already witnessed (condition ­),
   and sort canonically.  [delta] restricts discovery to matches using a
   new fact; [seen_of] supplies the per-TGD dedup table (persistent across
   stages for the semi-naive engines).  [considered] counts first-time
   frontier keys; [matches] counts every body match before dedup — the
   paper enumerates pairs (T, b̄), so two matches differing only in their
   existential witnesses are one consideration but two matches. *)
let collect_triggers ?delta ~seen_of ~considered ~matches cdeps d =
  let out = ref [] in
  List.iteri
    (fun di cd ->
      let seen = seen_of di cd in
      let emit fi slots =
        incr matches;
        if !Obs.metrics_on then Obs.Metrics.incr c_matches;
        consider_match ~seen ~considered d di cd fi (key_of fi slots) out
      in
      match delta with
      | None ->
          let fi = Lazy.force cd.fr_stage in
          Hom.Plan.iter_slots (Lazy.force cd.body_plan) d (emit fi)
      | Some delta_facts ->
          let fi = Lazy.force cd.fr_delta in
          Hom.Plan.iter_family
            (Lazy.force cd.body_family)
            d delta_facts (emit fi))
    cdeps;
  triggers_of !out

(* The parallel collector: semi-naive discovery over disjoint delta
   shards.  Workers only read the structure and emit raw (undeduplicated)
   full matches as slot arrays; the merge sorts them canonically — the
   family's shared slot layout makes the arrays comparable — then
   deduplicates, counts and head-checks sequentially.  The global
   deduplicated match set equals the sequential semi-naive one (a match
   reachable through pivots in different shards is emitted by several
   workers and merged back to one), so stats, surviving triggers and —
   after the canonical trigger sort — the firing sequence are all
   bit-identical to [`Seminaive].  Hom-level effort counters tick inside
   the workers and are approximate when [jobs > 1]. *)
let collect_triggers_par ~jobs ~seen_of ~considered ~matches cdeps d
    delta_facts =
  let delta = Array.of_list delta_facts in
  let nd = Array.length delta in
  let m = max 1 (min jobs (max nd 1)) in
  (* Round-robin shards, each keeping the delta's relative order. *)
  let shards =
    Array.init m (fun w ->
        let acc = ref [] in
        for i = nd - 1 downto 0 do
          if i mod m = w then acc := delta.(i) :: !acc
        done;
        !acc)
  in
  let out = ref [] in
  List.iteri
    (fun di cd ->
      let fam = Lazy.force cd.body_family in
      let fi = Lazy.force cd.fr_delta in
      let raw =
        Pool.run ~jobs:m m (fun w ->
            let acc = ref [] in
            Hom.Plan.iter_family fam d shards.(w) (fun slots ->
                acc := Array.copy slots :: !acc);
            List.rev !acc)
      in
      let t0 = Obs.Clock.now_s () in
      let all = List.sort compare (List.concat (Array.to_list raw)) in
      let seen_full = Hashtbl.create 64 in
      let seen = seen_of di cd in
      List.iter
        (fun slots ->
          if not (Hashtbl.mem seen_full slots) then begin
            Hashtbl.replace seen_full slots ();
            incr matches;
            if !Obs.metrics_on then Obs.Metrics.incr c_matches;
            consider_match ~seen ~considered d di cd fi (key_of fi slots) out
          end)
        all;
      if !Obs.metrics_on then
        Obs.Metrics.add c_merge_ms
          (int_of_float ((Obs.Clock.now_s () -. t0) *. 1000.)))
    cdeps;
  triggers_of !out

(* Collect the active pairs (T, b̄) of the current structure. *)
let active_triggers deps d =
  let considered = ref 0 and matches = ref 0 in
  collect_triggers
    ~seen_of:(fun _ _ -> Hashtbl.create 64)
    ~considered ~matches
    (List.map compile_dep deps)
    d
  |> List.map (fun (cd, fi, key) -> (cd.dep, binding_of_key fi key))

(* The active pairs of one dependency, without materialising the other
   dependencies' triggers. *)
let active_triggers_of dep d = active_triggers [ dep ] d |> List.map snd

(* Does [dep] have at least one active trigger?  Short-circuits on the
   first one instead of materialising the trigger list. *)
let has_active_trigger dep d =
  let seen = Hashtbl.create 64 in
  let found = ref false in
  (try
     Hom.iter_all d (Dep.body dep) (fun binding ->
         let fb = frontier_binding dep binding in
         let key = Binding_key.of_binding fb in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.replace seen key ();
           if not (head_satisfied d dep fb) then begin
             found := true;
             raise Exit
           end
         end)
   with Exit -> ());
  !found

(* Apply the surviving triggers in order, re-checking condition ­ against
   the evolving structure; returns the number of firings.  [on_fire] sees
   each firing as it happens, in order. *)
let apply_triggers ?(on_fire = fun _ _ -> ()) triggers d =
  let fired = ref 0 in
  List.iter
    (fun (cd, fi, key) ->
      if not (head_witnessed d cd fi key) then begin
        let fb = binding_of_key fi key in
        on_fire cd.dep fb;
        apply d cd.dep fb;
        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
        incr fired
      end)
    triggers;
  !fired

(* One stage of the chase procedure; returns the number of firings. *)
let chase_stage deps d =
  let considered = ref 0 and matches = ref 0 in
  let triggers =
    collect_triggers
      ~seen_of:(fun _ _ -> Hashtbl.create 64)
      ~considered ~matches
      (List.map compile_dep deps)
      d
  in
  apply_triggers triggers d

(* Run the chase in place for at most [max_stages] stages, or until the
   fixpoint, or until [stop] holds (checked after every stage).  Stage
   numbers stamp provenance into the structure: facts added at stage i
   belong to chase_i.

   [collect] abstracts the engines' trigger discovery; it is called once
   per stage, after the stage stamp, and shares the [considered]/[matches]
   refs with the final stats. *)
let run_engine ~span ~max_stages ~stop ~on_fire ~considered ~matches ~collect d
    =
  let applications = ref 0 in
  let finish i fixpoint =
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      body_matches = !matches;
      fixpoint;
    }
  in
  let rec go i =
    if i > max_stages then finish (i - 1) false
    else begin
      Structure.set_stage d i;
      let n_triggers = ref 0 and n_fired = ref 0 in
      Obs.Trace.with_span "tgd.stage"
        ~args:(fun () ->
          [ ("stage", i); ("triggers", !n_triggers); ("fired", !n_fired) ])
        (fun () ->
          let triggers = collect () in
          n_triggers := List.length triggers;
          n_fired := apply_triggers ~on_fire:(on_fire ~stage:i) triggers d);
      applications := !applications + !n_fired;
      if !n_fired = 0 then finish i true
      else if stop d then finish i false
      else go (i + 1)
    end
  in
  Obs.Trace.with_span span (fun () -> go 1)

let no_fire ~stage:_ _ _ = ()

let run_stage ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  let cdeps = List.map compile_dep deps in
  let considered = ref 0 and matches = ref 0 in
  let collect () =
    if !Obs.metrics_on then Obs.Metrics.observe h_delta (Structure.size d);
    collect_triggers
      ~seen_of:(fun _ _ -> Hashtbl.create 64)
      ~considered ~matches cdeps d
  in
  run_engine ~span:"tgd.chase(stage)" ~max_stages ~stop ~on_fire ~considered
    ~matches ~collect d

(* The per-run persistent dedup tables of the semi-naive engines. *)
let persistent_seen () =
  let tables = Hashtbl.create 8 in
  fun di _ ->
    match Hashtbl.find_opt tables di with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 64 in
        Hashtbl.replace tables di t;
        t

let run_seminaive ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  let cdeps = List.map compile_dep deps in
  let seen_of = persistent_seen () in
  let considered = ref 0 and matches = ref 0 in
  (* Watermark of the previous stage's start; the first delta is the whole
     initial structure. *)
  let wm = ref 0 in
  let collect () =
    let delta = Structure.delta_since d !wm in
    wm := Structure.watermark d;
    if !Obs.metrics_on then Obs.Metrics.observe h_delta (List.length delta);
    collect_triggers ~delta ~seen_of ~considered ~matches cdeps d
  in
  run_engine ~span:"tgd.chase(seminaive)" ~max_stages ~stop ~on_fire
    ~considered ~matches ~collect d

let run_par ?jobs ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let cdeps = List.map compile_dep deps in
  let seen_of = persistent_seen () in
  let considered = ref 0 and matches = ref 0 in
  let wm = ref 0 in
  let collect () =
    let delta = Structure.delta_since d !wm in
    wm := Structure.watermark d;
    if !Obs.metrics_on then Obs.Metrics.observe h_delta (List.length delta);
    collect_triggers_par ~jobs ~seen_of ~considered ~matches cdeps d delta
  in
  run_engine ~span:"tgd.chase(par)" ~max_stages ~stop ~on_fire ~considered
    ~matches ~collect d

(* The semi-oblivious (skolem) chase: every pair (T, b̄) fires exactly
   once, whether or not the head is already satisfied.  It diverges more
   often than the paper's lazy chase — condition ­ is exactly what keeps
   chase(T_Q, ·) tame — and exists here as the ablation baseline. *)
let run_oblivious ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  let fired = Hashtbl.create 256 in
  let applications = ref 0 in
  let considered = ref 0 in
  let matches = ref 0 in
  let finish i fixpoint =
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      body_matches = !matches;
      fixpoint;
    }
  in
  let cdeps = List.map compile_dep deps in
  let rec go i =
    if i > max_stages then finish (i - 1) false
    else begin
      Structure.set_stage d i;
      let n = ref 0 in
      Obs.Trace.with_span "tgd.stage"
        ~args:(fun () -> [ ("stage", i); ("fired", !n) ])
        (fun () ->
          let triggers = ref [] in
          List.iter
            (fun cd ->
              let fi = Lazy.force cd.fr_stage in
              Hom.Plan.iter_slots (Lazy.force cd.body_plan) d (fun slots ->
                  incr matches;
                  if !Obs.metrics_on then Obs.Metrics.incr c_matches;
                  let key = key_of fi slots in
                  let dkey = (Dep.name cd.dep, key) in
                  if not (Hashtbl.mem fired dkey) then begin
                    Hashtbl.replace fired dkey ();
                    incr considered;
                    if !Obs.metrics_on then Obs.Metrics.incr c_considered;
                    triggers := (cd.dep, binding_of_key fi key) :: !triggers
                  end))
            cdeps;
          n := List.length !triggers;
          List.iter
            (fun (dep, fb) ->
              on_fire ~stage:i dep fb;
              apply d dep fb;
              if !Obs.metrics_on then Obs.Metrics.incr c_firings)
            (List.rev !triggers));
      applications := !applications + !n;
      if !n = 0 then finish i true
      else if stop d then finish i false
      else go (i + 1)
    end
  in
  Obs.Trace.with_span "tgd.chase(oblivious)" (fun () -> go 1)

type engine = [ `Stage | `Seminaive | `Oblivious | `Par ]

let pp_engine ppf e =
  Fmt.string ppf
    (match e with
    | `Stage -> "stage"
    | `Seminaive -> "seminaive"
    | `Oblivious -> "oblivious"
    | `Par -> "par")

(* The engine front door.  Semi-naive is the default: it implements the
   same lazy stage semantics as [`Stage] (equal structures, equal firing
   sequence) with per-stage work proportional to the delta rather than to
   the whole structure.  [`Par] is semi-naive with sharded discovery;
   [jobs] bounds its worker count (ignored by the other engines). *)
let run ?(engine = `Seminaive) ?jobs ?max_stages ?stop ?on_fire deps d =
  match engine with
  | `Stage -> run_stage ?max_stages ?stop ?on_fire deps d
  | `Seminaive -> run_seminaive ?max_stages ?stop ?on_fire deps d
  | `Oblivious -> run_oblivious ?max_stages ?stop ?on_fire deps d
  | `Par -> run_par ?jobs ?max_stages ?stop ?on_fire deps d

(* Does D satisfy all the dependencies?  Short-circuits on the first
   active trigger instead of materialising every dependency's trigger
   list. *)
let models deps d = not (List.exists (fun dep -> has_active_trigger dep d) deps)

(* The first violated dependency in the order of [deps], with its least
   active frontier binding — deterministic, and cheap on satisfied
   prefixes because each dependency is first probed with the
   short-circuiting check. *)
let find_violation deps d =
  List.find_map
    (fun dep ->
      if not (has_active_trigger dep d) then None
      else
        match active_triggers_of dep d with
        | fb :: _ -> Some (dep, fb)
        | [] -> None)
    deps
