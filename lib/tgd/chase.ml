(* The chase (Section II.C).

   The paper's chase is "lazy": a pair (T, b̄) fires only when the body
   matches at b̄ (condition ¬) and no head witness exists yet (condition ­),
   both checked against the *current* structure.  [chase_stage] performs one
   pass of the stage procedure of Section II.C: it enumerates the pairs
   (T, b̄) over the stage-start structure, then applies the surviving
   triggers in order, re-checking ­ as the structure grows. *)

open Relational

type stats = {
  stages : int;        (* stages executed *)
  applications : int;  (* TGD firings *)
  fixpoint : bool;     (* no trigger was active at the last stage *)
}

let pp_stats ppf s =
  Fmt.pf ppf "stages=%d applications=%d fixpoint=%b" s.stages s.applications
    s.fixpoint

(* Restrict a body binding to the frontier of the TGD: the b̄ of the paper. *)
let frontier_binding dep binding =
  let fr = Dep.frontier dep in
  Term.Var_map.filter (fun x _ -> Term.Var_set.mem x fr) binding

(* Condition ­: D ⊨ ∃z̄ Ψ(z̄, b̄). *)
let head_satisfied d dep fb = Hom.exists ~init:fb d (Dep.head dep)

(* Fire (T, b̄): create a fresh copy of A[Ψ] identified with D along b̄. *)
let apply d dep fb =
  let fresh_names = Hashtbl.create 8 in
  let elem_of = function
    | Term.Cst c -> Structure.constant d c
    | Term.Var x -> (
        match Term.Var_map.find_opt x fb with
        | Some e -> e
        | None -> (
            match Hashtbl.find_opt fresh_names x with
            | Some e -> e
            | None ->
                let e = Structure.fresh d in
                Hashtbl.replace fresh_names x e;
                e))
  in
  List.iter
    (fun atom ->
      let args = Array.of_list (List.map elem_of (Atom.args atom)) in
      ignore (Structure.add_fact d (Fact.make (Atom.sym atom) args)))
    (Dep.head dep)

module Binding_key = struct
  (* Canonical key for a frontier binding, to deduplicate triggers. *)
  let of_binding fb =
    Term.Var_map.fold (fun x e acc -> (x, e) :: acc) fb []
    |> List.sort compare
end

(* Collect the active pairs (T, b̄) of the current structure. *)
let active_triggers deps d =
  let out = ref [] in
  List.iter
    (fun dep ->
      let seen = Hashtbl.create 64 in
      Hom.iter_all d (Dep.body dep) (fun binding ->
          let fb = frontier_binding dep binding in
          let key = Binding_key.of_binding fb in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            if not (head_satisfied d dep fb) then out := (dep, fb) :: !out
          end))
    deps;
  List.rev !out

(* One stage of the chase procedure; returns the number of firings. *)
let chase_stage deps d =
  let triggers = active_triggers deps d in
  let fired = ref 0 in
  List.iter
    (fun (dep, fb) ->
      (* condition ­ is re-checked against the evolving structure *)
      if not (head_satisfied d dep fb) then begin
        apply d dep fb;
        incr fired
      end)
    triggers;
  !fired

(* Run the chase in place for at most [max_stages] stages, or until the
   fixpoint, or until [stop] holds (checked after every stage).  Stage
   numbers stamp provenance into the structure: facts added at stage i
   belong to chase_i. *)
let run ?(max_stages = max_int) ?(stop = fun _ -> false) deps d =
  let applications = ref 0 in
  let rec go i =
    if i > max_stages then { stages = i - 1; applications = !applications; fixpoint = false }
    else begin
      Structure.set_stage d i;
      let fired = chase_stage deps d in
      applications := !applications + fired;
      if fired = 0 then { stages = i; applications = !applications; fixpoint = true }
      else if stop d then
        { stages = i; applications = !applications; fixpoint = false }
      else go (i + 1)
    end
  in
  go 1

(* The semi-oblivious (skolem) chase: every pair (T, b̄) fires exactly
   once, whether or not the head is already satisfied.  It diverges more
   often than the paper's lazy chase — condition ­ is exactly what keeps
   chase(T_Q, ·) tame — and exists here as the ablation baseline. *)
let run_oblivious ?(max_stages = max_int) ?(stop = fun _ -> false) deps d =
  let fired = Hashtbl.create 256 in
  let applications = ref 0 in
  let rec go i =
    if i > max_stages then
      { stages = i - 1; applications = !applications; fixpoint = false }
    else begin
      Structure.set_stage d i;
      let triggers = ref [] in
      List.iter
        (fun dep ->
          Hom.iter_all d (Dep.body dep) (fun binding ->
              let fb = frontier_binding dep binding in
              let key = (Dep.name dep, Binding_key.of_binding fb) in
              if not (Hashtbl.mem fired key) then begin
                Hashtbl.replace fired key ();
                triggers := (dep, fb) :: !triggers
              end))
        deps;
      let n = List.length !triggers in
      List.iter (fun (dep, fb) -> apply d dep fb) (List.rev !triggers);
      applications := !applications + n;
      if n = 0 then { stages = i; applications = !applications; fixpoint = true }
      else if stop d then
        { stages = i; applications = !applications; fixpoint = false }
      else go (i + 1)
    end
  in
  go 1

(* Does D satisfy all the dependencies (no active trigger)? *)
let models deps d = active_triggers deps d = []

(* The first violated dependency with a witness binding, for error
   reporting in tests. *)
let find_violation deps d =
  match active_triggers deps d with [] -> None | (dep, fb) :: _ -> Some (dep, fb)
