(* The chase (Section II.C).

   The paper's chase is "lazy": a pair (T, b̄) fires only when the body
   matches at b̄ (condition ¬) and no head witness exists yet (condition ­),
   both checked against the *current* structure.  [chase_stage] performs one
   pass of the stage procedure of Section II.C: it enumerates the pairs
   (T, b̄) over the stage-start structure, then applies the surviving
   triggers in order, re-checking ­ as the structure grows.

   Three trigger-discovery engines implement that stage semantics:

     [`Stage]     re-enumerates every body homomorphism of every TGD
                  against the whole structure at every stage;
     [`Seminaive] (default) matches each body only against homomorphisms
                  using at least one fact added since the previous stage
                  (the delta), exactly like semi-naive Datalog evaluation;
     [`Par]       semi-naive discovery fanned out over a domain pool:
                  workers enumerate body matches over disjoint delta
                  shards, the matches are merged in canonical sort order,
                  and firing stays sequential.

   Delta-restriction is sound for the lazy chase because both conditions
   are monotone in the structure: a body match wholly inside old facts was
   already discovered at an earlier stage, where it either fired (so its
   head witness now exists) or was withheld because condition ­ held (and
   head witnesses never disappear).  Either way it is inactive forever,
   so only delta-touching matches can yield new triggers.  Within a stage
   every engine applies the surviving triggers in the same canonical order
   (TGD index, then frontier tuple), so they build identical structures,
   fresh element ids included.

   Each dependency's body, delta family and head are compiled once per
   run into {!Hom.Plan}s; every stage re-evaluates the plans instead of
   re-deriving atom orders and pin choices. *)

open Relational

let c_matches = Obs.Metrics.counter "tgd.body_matches"
let c_considered = Obs.Metrics.counter "tgd.triggers_considered"
let c_firings = Obs.Metrics.counter "tgd.firings"
let c_head_checks = Obs.Metrics.counter "tgd.head_checks"
let c_merge_ms = Obs.Metrics.counter "par.merge_ms"
let c_fire_ms = Obs.Metrics.counter "par.fire_ms"

(* Same registered counter as [Pool]'s: the pool ticks it per worker on
   pooled scans; the single-shard fast path ticks it here so "par.shards"
   reads as shards-per-run for every par chase, pooled or not. *)
let c_shards = Obs.Metrics.counter "par.shards"
let c_par_retries = Obs.Metrics.counter "resilience.par_retries"
let c_par_degraded = Obs.Metrics.counter "resilience.par_degraded"
let h_delta = Obs.Metrics.histogram "tgd.delta_size"

module G = Resilience.Governor

type stats = {
  stages : int;              (* stages executed *)
  applications : int;        (* TGD firings *)
  triggers_considered : int; (* distinct (TGD, frontier) pairs examined *)
  body_matches : int;        (* raw body matches, before frontier dedup *)
  fixpoint : bool;           (* outcome = Fixpoint, kept for callers *)
  outcome : G.outcome;       (* how the run ended *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "stages=%d applications=%d triggers_considered=%d body_matches=%d \
     fixpoint=%b outcome=%a"
    s.stages s.applications s.triggers_considered s.body_matches s.fixpoint
    G.pp_outcome s.outcome

(* Knobs of the [`Par] engine, exposed for the ablation bench and the
   oracle.  [plan_mode] picks the atom-ordering strategy of the delta
   family ([Auto]: cost-ordered, generic join on cyclic bodies).
   [par_fire] selects the firing path: [`Seq] is the sequential
   delta-recheck replay, [`Staged] forces the partitioned-writer staging
   pipeline, [`Auto] (default) stages only when it can pay off — more
   than one worker — or when a failpoint campaign is active, so the
   staged path and its ["par.fire"] ladder stay exercised at [jobs = 1].
   [stealing] switches the worker pool between work-stealing and static
   round-robin scheduling.  Every combination is bit-identical to
   [`Seminaive]; only speed and effort counters move. *)
type par_tuning = {
  plan_mode : Hom.Plan.mode;
  par_fire : [ `Auto | `Seq | `Staged ];
  stealing : bool;
}

let default_tuning =
  { plan_mode = Hom.Plan.Auto; par_fire = `Auto; stealing = true }

(* Restrict a body binding to the frontier of the TGD: the b̄ of the paper. *)
let frontier_binding dep binding =
  let fr = Dep.frontier dep in
  Term.Var_map.filter (fun x _ -> Term.Var_set.mem x fr) binding

(* Condition ­: D ⊨ ∃z̄ Ψ(z̄, b̄). *)
let head_satisfied d dep fb =
  if !Obs.metrics_on then Obs.Metrics.incr c_head_checks;
  Hom.exists ~init:fb d (Dep.head dep)

(* Frontier access precomputed at the slot level: the frontier variables
   in ascending name order (the canonical key order — [Var_set.elements]
   and [Var_map.bindings] agree on it), their slots in the relevant body
   layout, and their slots in the head plan.  The per-match hot path then
   projects an int-array frontier key straight off the evaluator's slot
   array and never touches a [Var_map]; name bindings are rebuilt only
   for triggers that actually fire. *)
type frontier_info = {
  fr_names : string array;
  fr_slots : int array;  (* body-plan or family layout *)
  fr_head : int array;   (* head-plan slots; -1 if the head omits the var *)
}

let frontier_info dep ~slot_of head_plan =
  let fr_names = Array.of_list (Term.Var_set.elements (Dep.frontier dep)) in
  let fr_slots =
    Array.map
      (fun x ->
        match slot_of x with
        | Some s -> s
        | None -> invalid_arg "frontier variable missing from body plan")
      fr_names
  in
  let fr_head =
    Array.map
      (fun x -> Option.value ~default:(-1) (Hom.Plan.slot head_plan x))
      fr_names
  in
  { fr_names; fr_slots; fr_head }

(* A compiled head for replay-based firing.  Each head-atom argument is
   either an index into the frontier key ([>= 0], encoded [2i]) or a
   negative placeholder: odd [-(2k+1)] for the k-th fresh (existential)
   variable, even [-(2c+2)] for the c-th constant, both numbered in
   first-use order over the head traversal — exactly the order {!apply}
   allocates them, so a replay creates the same elements with the same
   ids.  Constants are looked up (and possibly created) at replay time,
   never earlier: a constant first materialised mid-stage must keep its
   allocation slot between the freshes around it. *)
type fire_plan = {
  fp_syms : Symbol.t array;
  fp_args : int array array;
  fp_nfresh : int;
  fp_consts : string array;
}

let compile_fire_plan dep =
  let fr_names = Array.of_list (Term.Var_set.elements (Dep.frontier dep)) in
  let fr_index = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.replace fr_index x i) fr_names;
  let fresh = Hashtbl.create 8 in
  let consts = Hashtbl.create 8 in
  let const_list = ref [] in
  let atoms = Dep.head dep in
  let args =
    List.map
      (fun atom ->
        Array.of_list
          (List.map
             (fun t ->
               match t with
               | Term.Var x -> (
                   match Hashtbl.find_opt fr_index x with
                   | Some i -> 2 * i
                   | None -> (
                       match Hashtbl.find_opt fresh x with
                       | Some k -> -((2 * k) + 1)
                       | None ->
                           let k = Hashtbl.length fresh in
                           Hashtbl.replace fresh x k;
                           -((2 * k) + 1)))
               | Term.Cst c -> (
                   match Hashtbl.find_opt consts c with
                   | Some ci -> -((2 * ci) + 2)
                   | None ->
                       let ci = Hashtbl.length consts in
                       Hashtbl.replace consts c ci;
                       const_list := c :: !const_list;
                       -((2 * ci) + 2)))
             (Atom.args atom)))
      atoms
  in
  {
    fp_syms = Array.of_list (List.map Atom.sym atoms);
    fp_args = Array.of_list args;
    fp_nfresh = Hashtbl.length fresh;
    fp_consts = Array.of_list (List.rev !const_list);
  }

(* Fire a staged/compiled head for frontier key [key]: the placeholder
   codes resolve at first use, in head-traversal order — bit-identical
   element allocation to {!apply}. *)
let replay_fire d fp key =
  let freshes = Array.make (max fp.fp_nfresh 1) (-1) in
  let consts = Array.make (max (Array.length fp.fp_consts) 1) (-1) in
  let resolve v =
    if v >= 0 then key.(v / 2)
    else
      let m = -v in
      if m land 1 = 1 then begin
        let k = (m - 1) / 2 in
        if freshes.(k) < 0 then freshes.(k) <- Structure.fresh d;
        freshes.(k)
      end
      else begin
        let c = (m - 2) / 2 in
        if consts.(c) < 0 then
          consts.(c) <- Structure.constant d fp.fp_consts.(c);
        consts.(c)
      end
  in
  for a = 0 to Array.length fp.fp_syms - 1 do
    let args = Array.map resolve fp.fp_args.(a) in
    ignore (Structure.add_fact d (Fact.make fp.fp_syms.(a) args))
  done

(* A dependency with its compiled plans.  All are lazy so each engine
   only pays for the plans it evaluates (the stage engine never compiles
   the delta family, the delta engines never compile the full body
   plan).  [fr_stage]/[fr_delta]/[fr_par] carry the frontier slot
   projections for the three body layouts; [body_family_par] is the
   [`Par] engine's family, compiled under [par_mode] (the cost-ordered /
   generic-join modes — its slot layout differs from [body_family]'s,
   hence the separate projection). *)
type cdep = {
  dep : Dep.t;
  body_plan : Hom.Plan.t Lazy.t;
  body_family : Hom.Plan.family Lazy.t;
  body_family_par : Hom.Plan.family Lazy.t;
  head_plan : Hom.Plan.t Lazy.t;
  fire_plan : fire_plan Lazy.t;
  fr_stage : frontier_info Lazy.t;
  fr_delta : frontier_info Lazy.t;
  fr_par : frontier_info Lazy.t;
}

let compile_dep ?(par_mode = Hom.Plan.Auto) dep =
  let body_plan = lazy (Hom.Plan.compile (Dep.body dep)) in
  let body_family = lazy (Hom.Plan.compile_family (Dep.body dep)) in
  let body_family_par =
    lazy (Hom.Plan.compile_family ~mode:par_mode (Dep.body dep))
  in
  let head_plan = lazy (Hom.Plan.compile (Dep.head dep)) in
  {
    dep;
    body_plan;
    body_family;
    body_family_par;
    head_plan;
    fire_plan = lazy (compile_fire_plan dep);
    fr_stage =
      lazy
        (frontier_info dep
           ~slot_of:(Hom.Plan.slot (Lazy.force body_plan))
           (Lazy.force head_plan));
    fr_delta =
      lazy
        (frontier_info dep
           ~slot_of:(Hom.Plan.family_slot (Lazy.force body_family))
           (Lazy.force head_plan));
    fr_par =
      lazy
        (frontier_info dep
           ~slot_of:(Hom.Plan.family_slot (Lazy.force body_family_par))
           (Lazy.force head_plan));
  }

(* The frontier key of a body match: the frontier elements in canonical
   (ascending variable name) order.  Same-dependency keys compare exactly
   like the former sorted [(var, elem)] association lists, so the
   canonical firing order is unchanged. *)
let key_of fi slots = Array.map (fun s -> Array.unsafe_get slots s) fi.fr_slots

let binding_of_key fi key =
  let m = ref Term.Var_map.empty in
  Array.iteri (fun i x -> m := Term.Var_map.add x key.(i) !m) fi.fr_names;
  !m

(* Condition ­ straight from a frontier key: the head plan is seeded by
   slot, skipping the binding round-trip. *)
let head_witnessed d cd fi key =
  if !Obs.metrics_on then Obs.Metrics.incr c_head_checks;
  let init = ref [] in
  Array.iteri
    (fun i s -> if s >= 0 then init := (s, key.(i)) :: !init)
    fi.fr_head;
  Hom.Plan.exists_slots ~init:!init (Lazy.force cd.head_plan) d

(* Fire (T, b̄): create a fresh copy of A[Ψ] identified with D along b̄. *)
let apply d dep fb =
  let fresh_names = Hashtbl.create 8 in
  let elem_of = function
    | Term.Cst c -> Structure.constant d c
    | Term.Var x -> (
        match Term.Var_map.find_opt x fb with
        | Some e -> e
        | None -> (
            match Hashtbl.find_opt fresh_names x with
            | Some e -> e
            | None ->
                let e = Structure.fresh d in
                Hashtbl.replace fresh_names x e;
                e))
  in
  List.iter
    (fun atom ->
      let args = Array.of_list (List.map elem_of (Atom.args atom)) in
      ignore (Structure.add_fact d (Fact.make (Atom.sym atom) args)))
    (Dep.head dep)

module Binding_key = struct
  (* Canonical key for a frontier binding, to deduplicate triggers:
     [Var_map.bindings] already yields the pairs in ascending variable
     order, so no extra sort is needed. *)
  let of_binding fb = Term.Var_map.bindings fb
end

(* Sort a stage's surviving triggers into the canonical firing order
   (TGD index, then frontier key), shared by all engines so their fresh
   elements coincide.  Keys of one dependency are equal-length int
   arrays, compared element-wise by the polymorphic compare — the same
   order the sorted association lists used to induce. *)
let sort_triggers triggers =
  List.sort
    (fun (i1, _, _, k1) (i2, _, _, k2) ->
      let c = Int.compare i1 i2 in
      if c <> 0 then c else compare k1 k2)
    triggers

let triggers_of out =
  List.map (fun (_, cd, fi, key) -> (cd, fi, key)) (sort_triggers out)

(* Examine one deduplicated body match: first-time frontier keys count as
   considerations; those with no head witness survive as triggers.
   [note] observes every first consideration — (dependency index, key) —
   whether or not the trigger survives; the maintenance layer rebuilds
   its withheld-trigger records from it. *)
let consider_match ~seen ~considered ~note d di cd fi key out =
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.replace seen key ();
    incr considered;
    if !Obs.metrics_on then Obs.Metrics.incr c_considered;
    note di key;
    if not (head_witnessed d cd fi key) then out := (di, cd, fi, key) :: !out
  end

let no_note (_ : int) (_ : int array) = ()

(* Collect the stage's triggers: deduplicate body matches per TGD by
   frontier key, drop those whose head is already witnessed (condition ­),
   and sort canonically.  [delta] restricts discovery to matches using a
   new fact; [seen_of] supplies the per-TGD dedup table (persistent across
   stages for the semi-naive engines).  [considered] counts first-time
   frontier keys; [matches] counts every body match before dedup — the
   paper enumerates pairs (T, b̄), so two matches differing only in their
   existential witnesses are one consideration but two matches. *)
let collect_triggers ?delta ?(note = no_note) ~seen_of ~considered ~matches
    cdeps d =
  let out = ref [] in
  List.iteri
    (fun di cd ->
      let seen = seen_of di cd in
      let emit fi slots =
        incr matches;
        if !Obs.metrics_on then Obs.Metrics.incr c_matches;
        consider_match ~seen ~considered ~note d di cd fi (key_of fi slots) out
      in
      match delta with
      | None ->
          let fi = Lazy.force cd.fr_stage in
          Hom.Plan.iter_slots (Lazy.force cd.body_plan) d (emit fi)
      | Some delta_facts ->
          let fi = Lazy.force cd.fr_delta in
          Hom.Plan.iter_family
            (Lazy.force cd.body_family)
            d delta_facts (emit fi))
    cdeps;
  triggers_of !out

(* The parallel collector: semi-naive discovery over the delta as a
   dense fact-id index, chunked into contiguous id ranges.

   Fast path ([jobs <= 1], no failpoint campaign): the per-dependency
   id-level family scan runs inline with its own dedup, feeding
   [consider_match] directly — no slot-array boxing, no merge.  This is
   the single-core shape, and it must beat [`Seminaive]'s boxed-delta
   scan outright: the delta index is built once per stage and shared by
   all dependencies, and the [`Par] family plans run under the
   cost-ordered / generic-join modes.

   Parallel path: the tasks are (dependency x id-chunk) pairs executed
   by a work-stealing pool (round-robin under [stealing:false]), so one
   skewed chunk — a grid rule whose delta bucket dwarfs the others — is
   drained by whichever workers fall idle.  Workers only read the
   structure and emit raw full matches as slot arrays; the merge sorts
   each dependency's matches canonically — the family's shared slot
   layout makes the arrays comparable — then deduplicates, counts and
   head-checks sequentially.  The deduplicated match set equals the
   sequential semi-naive one (a match reachable through pivots in
   different chunks is emitted by several tasks and merged back to one),
   so stats, surviving triggers and — after the canonical trigger sort —
   the firing sequence are all bit-identical to [`Seminaive].  Hom-level
   effort counters tick inside the workers and are approximate when
   [jobs > 1].

   The ["par.shard"] failpoint decisions are drawn sequentially *before*
   the workers spawn, so the fault schedule never races the decision
   stream across domains; a marked task dies before scanning, the pool
   re-raises after joining everyone, the whole scan is retried once and
   then degrades to the sequential fast path — whose results feed the
   same dedup, keeping faulted runs bit-identical too. *)
let collect_triggers_idx ?(note = no_note) ~jobs ~stealing ~seen_of ~considered
    ~matches cdeps d ~lo ~hi =
  let dix = Hom.Plan.delta_index_of d ~lo ~hi in
  let out = ref [] in
  let run_deps f = List.iteri f cdeps in
  let sequential () =
    run_deps (fun di cd ->
        let seen = seen_of di cd in
        let fi = Lazy.force cd.fr_par in
        Hom.Plan.iter_family_ids
          (Lazy.force cd.body_family_par)
          d dix
          (fun slots ->
            incr matches;
            if !Obs.metrics_on then Obs.Metrics.incr c_matches;
            consider_match ~seen ~considered ~note d di cd fi (key_of fi slots)
              out))
  in
  if jobs <= 1 && not (Resilience.Failpoint.active ()) then begin
    (* one worker: the stage is its own single shard *)
    if !Obs.metrics_on then Obs.Metrics.incr c_shards;
    sequential ()
  end
  else begin
    let cds = Array.of_list cdeps in
    let ndeps = Array.length cds in
    let m = max 1 (min jobs (max (hi - lo) 1)) in
    let ntasks = ndeps * m in
    (* Contiguous id chunks; task [t] scans dependency [t / m] over
       chunk [t mod m]. *)
    let csize = ((hi - lo) + m - 1) / m in
    let chunk c = (lo + (c * csize), min hi (lo + ((c + 1) * csize))) in
    let scan_tasks () =
      let faults = Array.make ntasks false in
      if Resilience.Failpoint.active () then
        for t = 0 to ntasks - 1 do
          faults.(t) <- Resilience.Failpoint.fire "par.shard"
        done;
      let pool = if stealing then Pool.run_stealing ?steals:None else Pool.run in
      pool ~jobs:m ntasks (fun t ->
          if faults.(t) then raise (Resilience.Failpoint.Injected "par.shard");
          let di = t / m in
          let clo, chi = chunk (t mod m) in
          let acc = ref [] in
          if chi > clo then
            Hom.Plan.iter_family_ids
              (Lazy.force cds.(di).body_family_par)
              d dix ~lo:clo ~hi:chi
              (fun slots -> acc := Array.copy slots :: !acc);
          List.rev !acc)
    in
    match
      (try Some (scan_tasks ()) with
      | Resilience.Failpoint.Injected "par.shard" -> (
          if !Obs.metrics_on then Obs.Metrics.incr c_par_retries;
          try Some (scan_tasks ()) with
          | Resilience.Failpoint.Injected "par.shard" ->
              if !Obs.metrics_on then Obs.Metrics.incr c_par_degraded;
              None))
    with
    | None -> sequential ()
    | Some raw ->
        let t0 = Obs.Clock.now_s () in
        for di = 0 to ndeps - 1 do
          let cd = cds.(di) in
          let fi = Lazy.force cd.fr_par in
          let seen = seen_of di cd in
          let acc = ref [] in
          for c = m - 1 downto 0 do
            acc := List.rev_append (List.rev raw.((di * m) + c)) !acc
          done;
          let all = List.sort compare !acc in
          let seen_full = Hashtbl.create 64 in
          List.iter
            (fun slots ->
              if not (Hashtbl.mem seen_full slots) then begin
                Hashtbl.replace seen_full slots ();
                incr matches;
                if !Obs.metrics_on then Obs.Metrics.incr c_matches;
                consider_match ~seen ~considered ~note d di cd fi
                  (key_of fi slots) out
              end)
            all
        done;
        if !Obs.metrics_on then
          Obs.Metrics.add c_merge_ms
            (int_of_float ((Obs.Clock.now_s () -. t0) *. 1000.))
  end;
  triggers_of !out

(* Collect the active pairs (T, b̄) of the current structure. *)
let active_triggers deps d =
  let considered = ref 0 and matches = ref 0 in
  collect_triggers
    ~seen_of:(fun _ _ -> Hashtbl.create 64)
    ~considered ~matches
    (List.map (fun dep -> compile_dep dep) deps)
    d
  |> List.map (fun (cd, fi, key) -> (cd.dep, binding_of_key fi key))

(* The active pairs of one dependency, without materialising the other
   dependencies' triggers. *)
let active_triggers_of dep d = active_triggers [ dep ] d |> List.map snd

(* Does [dep] have at least one active trigger?  Short-circuits on the
   first one instead of materialising the trigger list. *)
let has_active_trigger dep d =
  let seen = Hashtbl.create 64 in
  let found = ref false in
  (try
     Hom.iter_all d (Dep.body dep) (fun binding ->
         let fb = frontier_binding dep binding in
         let key = Binding_key.of_binding fb in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.replace seen key ();
           if not (head_satisfied d dep fb) then begin
             found := true;
             raise Exit
           end
         end)
   with Exit -> ());
  !found

(* Apply the surviving triggers in order, re-checking condition ­ against
   the evolving structure; returns the number of firings.  [on_fire] sees
   each firing as it happens, in order. *)
let apply_triggers ?(on_fire = fun _ _ -> ()) triggers d =
  let fired = ref 0 in
  List.iter
    (fun (cd, fi, key) ->
      if not (head_witnessed d cd fi key) then begin
        let fb = binding_of_key fi key in
        on_fire cd.dep fb;
        apply d cd.dep fb;
        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
        incr fired
      end)
    triggers;
  !fired

(* The apply-time re-check, delta-restricted.  A trigger that survived
   collection was unwitnessed against the apply-start structure, and head
   witnesses are monotone; so when the re-check runs, a witness exists
   iff some witness uses a fact added since apply start ([wm0]).
   {!Hom.Plan.exists_delta} checks exactly that, over the binary-searched
   new tails of the pin buckets — near-free on the (overwhelmingly
   common) triggers whose heads nothing re-witnessed mid-stage, where the
   full {!head_witnessed} pays a complete existence search per trigger. *)
(* Above this many pivot candidates the delta-tail scan loses to the
   plain pin-driven search; below it, it is near-free.  Any value is
   correct — both branches are exact (see [head_witnessed_delta]) — the
   cutoff only moves wall-clock. *)
let delta_recheck_cutoff = 32

let head_witnessed_delta ~wm0 d cd fi key =
  if !Obs.metrics_on then Obs.Metrics.incr c_head_checks;
  let init = ref [] in
  Array.iteri
    (fun i s -> if s >= 0 then init := (s, key.(i)) :: !init)
    fi.fr_head;
  (* The trigger survived discovery against exactly the [< wm0]
     structure, so no witness over the old facts exists —
     {!Hom.Plan.exists_since}'s invariant — and the re-check dispatches
     between the near-free empty-tail case, the delta-pivot scan and the
     pin-driven full search, all exact here. *)
  Hom.Plan.exists_since ~min_id:wm0 ~cutoff:delta_recheck_cutoff ~init:!init
    (Lazy.force cd.head_plan) d

(* As {!apply_triggers}, with the delta-restricted re-check and the
   compiled-head replay.  Same firings, same structure, same counters
   that matter ([c_head_checks] ticks once per trigger either way); only
   the per-trigger cost drops.  Used by the delta engines ([`Seminaive]
   and [`Par]'s sequential rungs); [`Stage] keeps the full re-check as
   the pristine reference. *)
let apply_triggers_delta ?(on_fire = fun _ _ -> ()) triggers d =
  let wm0 = Structure.watermark d in
  let fired = ref 0 in
  List.iter
    (fun (cd, fi, key) ->
      if not (head_witnessed_delta ~wm0 d cd fi key) then begin
        on_fire cd.dep (binding_of_key fi key);
        replay_fire d (Lazy.force cd.fire_plan) key;
        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
        incr fired
      end)
    triggers;
  !fired

(* Parallel firing via partitioned writers.  Workers cannot append to
   the arena — fact ids, element allocation and the journal are
   sequential resources — so the pipeline splits firing in two:

   Phase 1 (parallel, read-only): the triggers are partitioned into
   contiguous chunks; each task *stages* its triggers' head atoms into a
   private {!Fact_arena.Staging} buffer — frontier arguments resolved to
   elements, fresh/constant placeholders kept as the fire plan's negative
   codes.  Nothing observable happens: no allocation, no index writes.

   Phase 2 (sequential, canonical): the buffers are walked in trigger
   order — chunks are contiguous, so buffer concatenation *is* the
   canonical order — and each trigger is re-checked with the
   delta-restricted condition ­ against the evolving structure; survivors
   have their staged atoms materialised, placeholders resolving at first
   use in traversal order.  That is exactly the sequence of
   {!apply_triggers_delta}, so the structure, journal and firing sequence
   are bit-identical to every other engine's.

   The ["par.fire"] failpoint kills a marked task before it stages
   (decisions drawn pre-spawn, as with "par.shard"); staging is
   side-effect-free, so the ladder — retry once, then degrade to
   {!apply_triggers_delta} — never leaves partial state behind. *)
let apply_triggers_par ?(on_fire = fun _ _ -> ()) ~jobs ~stealing triggers d =
  let tarr = Array.of_list triggers in
  let nt = Array.length tarr in
  if nt = 0 then 0
  else begin
    let t0 = Obs.Clock.now_s () in
    let m = max 1 (min jobs nt) in
    let csize = (nt + m - 1) / m in
    let stage_chunk faults c =
      if faults.(c) then raise (Resilience.Failpoint.Injected "par.fire");
      let s = Fact_arena.Staging.create () in
      let hi = min nt ((c + 1) * csize) in
      for t = c * csize to hi - 1 do
        let cd, _, key = tarr.(t) in
        let fp = Lazy.force cd.fire_plan in
        for a = 0 to Array.length fp.fp_syms - 1 do
          Fact_arena.Staging.stage s ~trigger:t ~atom:a
            (Array.map
               (fun v -> if v >= 0 then key.(v / 2) else v)
               fp.fp_args.(a))
        done
      done;
      s
    in
    let run_stage_tasks () =
      let faults = Array.make m false in
      if Resilience.Failpoint.active () then
        for c = 0 to m - 1 do
          faults.(c) <- Resilience.Failpoint.fire "par.fire"
        done;
      let pool = if stealing then Pool.run_stealing ?steals:None else Pool.run in
      pool ~jobs:m m (stage_chunk faults)
    in
    match
      (try Some (run_stage_tasks ()) with
      | Resilience.Failpoint.Injected "par.fire" -> (
          if !Obs.metrics_on then Obs.Metrics.incr c_par_retries;
          try Some (run_stage_tasks ()) with
          | Resilience.Failpoint.Injected "par.fire" ->
              if !Obs.metrics_on then Obs.Metrics.incr c_par_degraded;
              None))
    with
    | None -> apply_triggers_delta ~on_fire triggers d
    | Some buffers ->
        (* Canonical merge: triggers in ascending order, the re-check and
           placeholder resolution exactly as the sequential path runs
           them. *)
        let wm0 = Structure.watermark d in
        let fired = ref 0 in
        let cur = ref (-1) in
        let cur_fires = ref false in
        let freshes = ref [||] in
        let consts = ref [||] in
        let cur_fp = ref None in
        let resolve fp v =
          if v >= 0 then v
          else
            let m = -v in
            if m land 1 = 1 then begin
              let k = (m - 1) / 2 in
              if !freshes.(k) < 0 then !freshes.(k) <- Structure.fresh d;
              !freshes.(k)
            end
            else begin
              let c = (m - 2) / 2 in
              if !consts.(c) < 0 then
                !consts.(c) <- Structure.constant d fp.fp_consts.(c);
              !consts.(c)
            end
        in
        Array.iter
          (fun s ->
            Fact_arena.Staging.iter s (fun ~trigger ~atom args ->
                if trigger <> !cur then begin
                  cur := trigger;
                  let cd, fi, key = tarr.(trigger) in
                  if head_witnessed_delta ~wm0 d cd fi key then begin
                    cur_fires := false;
                    cur_fp := None
                  end
                  else begin
                    cur_fires := true;
                    let fp = Lazy.force cd.fire_plan in
                    cur_fp := Some fp;
                    freshes := Array.make (max fp.fp_nfresh 1) (-1);
                    consts :=
                      Array.make (max (Array.length fp.fp_consts) 1) (-1);
                    on_fire cd.dep (binding_of_key fi key);
                    if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                    incr fired
                  end
                end;
                if !cur_fires then
                  match !cur_fp with
                  | Some fp ->
                      let args = Array.map (resolve fp) args in
                      ignore
                        (Structure.add_fact d
                           (Fact.make fp.fp_syms.(atom) args))
                  | None -> ()))
          buffers;
        if !Obs.metrics_on then
          Obs.Metrics.add c_fire_ms
            (int_of_float ((Obs.Clock.now_s () -. t0) *. 1000.));
        !fired
  end

(* One stage of the chase procedure; returns the number of firings. *)
let chase_stage deps d =
  let considered = ref 0 and matches = ref 0 in
  let triggers =
    collect_triggers
      ~seen_of:(fun _ _ -> Hashtbl.create 64)
      ~considered ~matches
      (List.map (fun dep -> compile_dep dep) deps)
      d
  in
  apply_triggers triggers d

type engine = [ `Stage | `Seminaive | `Oblivious | `Par ]

let pp_engine ppf e =
  Fmt.string ppf
    (match e with
    | `Stage -> "stage"
    | `Seminaive -> "seminaive"
    | `Oblivious -> "oblivious"
    | `Par -> "par")

(* A resumable chase snapshot: the structure (a Marshal round-trip clone,
   the only journal-order-preserving copy), the semi-naive watermark, the
   per-TGD persistent dedup keys in canonical sorted order, and the
   counters.  [snap_stage] is the last *completed* stage; resuming
   continues at [snap_stage + 1] with absolute stage numbering, so a
   prefix run + resume is bit-identical to one uninterrupted run. *)
type snapshot = {
  snap_engine : engine;
  snap_stage : int;
  snap_wm : int;
  snap_seen : (int * int array list) list; (* TGD index -> sorted keys *)
  snap_considered : int;
  snap_matches : int;
  snap_applications : int;
  snap_deps : string list; (* Dep names, to reject mismatched resumes *)
  snap_structure : Structure.t;
}

(* Run the chase in place for at most [max_stages] stages, or until the
   fixpoint, until [stop] holds, or until the [governor] interrupts
   (cancellation/deadline at stage boundaries and inside read-only
   discovery scans; element/fact budgets at stage boundaries).  Stage
   numbers stamp provenance into the structure: facts added at stage i
   belong to chase_i.

   [collect] abstracts the engines' trigger discovery and [apply] their
   firing path (full-recheck sequential, delta-recheck replay, or staged
   parallel); [collect] is called once per stage, after the stage stamp,
   and shares the [considered]/[matches] refs with the final stats.
   [make_snapshot] captures the engine's
   resumable state; snapshots are built only when [on_snapshot] is given,
   every [snapshot_every] completed stages and at the final stage of any
   cleanly-ended run.  A scan aborted mid-stage (cancellation) or a fault
   leaves per-run dedup state ahead of the last boundary, so those paths
   deliberately skip the final snapshot — the last boundary snapshot is
   the resumable one. *)
let run_engine ~span ~governor ~max_stages ~stop ~on_fire ~considered ~matches
    ~collect ~apply ~make_snapshot ~snapshot_every ~on_snapshot ~start_stage
    ~start_applications d =
  let applications = ref start_applications in
  let last_snap = ref (-1) in
  let emit_snapshot i =
    match on_snapshot with
    | Some f when i > !last_snap ->
        last_snap := i;
        f (make_snapshot ~stage:i ~applications:!applications)
    | _ -> ()
  in
  let finish ?(snap = true) i outcome =
    if snap then emit_snapshot i;
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      body_matches = !matches;
      fixpoint = (outcome = G.Fixpoint);
      outcome;
    }
  in
  let max_stages = min max_stages governor.G.max_stages in
  let rec go i =
    match G.interrupted governor with
    | Some o -> finish (i - 1) o
    | None ->
        if i > max_stages then finish (i - 1) (G.Budget G.Stages)
        else begin
          Structure.set_stage d i;
          let n_triggers = ref 0 and n_fired = ref 0 in
          let step () =
            let triggers = G.with_scope governor collect in
            n_triggers := List.length triggers;
            n_fired := apply (on_fire ~stage:i) triggers
          in
          match
            Obs.Trace.with_span "tgd.stage"
              ~args:(fun () ->
                [ ("stage", i); ("triggers", !n_triggers); ("fired", !n_fired) ])
              (fun () ->
                try Ok (step ()) with
                | G.Cancel.Cancelled -> Error `Cancelled
                | Resilience.Failpoint.Injected site -> Error (`Faulted site))
          with
          | Error `Cancelled -> finish ~snap:false (i - 1) G.Cancelled
          | Error (`Faulted site) ->
              (* a fault during apply may leave a partial stage in the
                 structure: report cleanly, never snapshot the state *)
              finish ~snap:false (i - 1) (G.Faulted site)
          | Ok () ->
              applications := !applications + !n_fired;
              if !n_fired = 0 then finish i G.Fixpoint
              else begin
                if (i - start_stage) mod snapshot_every = 0 then
                  emit_snapshot i;
                match
                  G.over_budget governor ~elems:(Structure.card d)
                    ~facts:(Structure.size d)
                with
                | Some o -> finish i o
                | None ->
                    if stop d then finish i (G.Budget G.Stop) else go (i + 1)
              end
        end
  in
  Obs.Trace.with_span span (fun () -> go (start_stage + 1))

let no_fire ~stage:_ _ _ = ()
let deps_signature deps = List.map Dep.name deps

let check_resume_deps deps snap =
  if snap.snap_deps <> deps_signature deps then
    invalid_arg "Chase.resume: dependency list differs from the snapshot's"

let run_stage ?(governor = G.unlimited) ?(max_stages = max_int)
    ?(stop = fun _ -> false) ?(on_fire = no_fire) ?(snapshot_every = 1)
    ?on_snapshot ?from deps d =
  (match from with Some s -> check_resume_deps deps s | None -> ());
  let cdeps = List.map (fun dep -> compile_dep dep) deps in
  let start_stage, considered0, matches0, apps0 =
    match from with
    | Some s ->
        (s.snap_stage, s.snap_considered, s.snap_matches, s.snap_applications)
    | None -> (0, 0, 0, 0)
  in
  let considered = ref considered0 and matches = ref matches0 in
  let make_snapshot ~stage ~applications =
    {
      snap_engine = `Stage;
      snap_stage = stage;
      snap_wm = Structure.watermark d;
      snap_seen = [];
      snap_considered = !considered;
      snap_matches = !matches;
      snap_applications = applications;
      snap_deps = deps_signature deps;
      snap_structure = Resilience.Checkpoint.clone d;
    }
  in
  let collect () =
    if !Obs.metrics_on then Obs.Metrics.observe h_delta (Structure.size d);
    collect_triggers
      ~seen_of:(fun _ _ -> Hashtbl.create 64)
      ~considered ~matches cdeps d
  in
  run_engine ~span:"tgd.chase(stage)" ~governor ~max_stages ~stop ~on_fire
    ~considered ~matches ~collect
    ~apply:(fun on_fire triggers -> apply_triggers ~on_fire triggers d)
    ~make_snapshot ~snapshot_every ~on_snapshot ~start_stage
    ~start_applications:apps0 d

(* The per-run persistent dedup tables of the semi-naive engines, with a
   sorted dump / reload pair for snapshots. *)
let persistent_seen ?(from = []) () =
  let tables = Hashtbl.create 8 in
  List.iter
    (fun (di, keys) ->
      let t = Hashtbl.create (max 64 (2 * List.length keys)) in
      List.iter (fun k -> Hashtbl.replace t k ()) keys;
      Hashtbl.replace tables di t)
    from;
  let get di _ =
    match Hashtbl.find_opt tables di with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 64 in
        Hashtbl.replace tables di t;
        t
  in
  let dump () =
    Hashtbl.fold
      (fun di t acc ->
        (di, List.sort compare (Hashtbl.fold (fun k () l -> k :: l) t []))
        :: acc)
      tables []
    |> List.sort compare
  in
  (get, dump)

(* The shared delta-engine driver ([`Seminaive] and [`Par]). *)
let run_delta ~par ?jobs ?(tuning = default_tuning) ?(note = no_note) ~governor
    ~max_stages ~stop ~on_fire ~snapshot_every ~on_snapshot ~from deps d =
  (match from with Some s -> check_resume_deps deps s | None -> ());
  let cdeps = List.map (compile_dep ~par_mode:tuning.plan_mode) deps in
  let start_stage, wm0, seen0, considered0, matches0, apps0 =
    match from with
    | Some s ->
        ( s.snap_stage,
          s.snap_wm,
          s.snap_seen,
          s.snap_considered,
          s.snap_matches,
          s.snap_applications )
    | None -> (0, 0, [], 0, 0, 0)
  in
  let seen_of, dump_seen = persistent_seen ~from:seen0 () in
  let considered = ref considered0 and matches = ref matches0 in
  (* Watermark of the previous stage's start; the first delta is the whole
     initial structure. *)
  let wm = ref wm0 in
  let make_snapshot ~stage ~applications =
    {
      snap_engine = (if par then `Par else `Seminaive);
      snap_stage = stage;
      snap_wm = !wm;
      snap_seen = dump_seen ();
      snap_considered = !considered;
      snap_matches = !matches;
      snap_applications = applications;
      snap_deps = deps_signature deps;
      snap_structure = Resilience.Checkpoint.clone d;
    }
  in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let collect () =
    if par then begin
      let lo, hi = Structure.delta_ids d !wm in
      if !Obs.metrics_on then Obs.Metrics.observe h_delta (hi - lo);
      let triggers =
        collect_triggers_idx ~note ~jobs ~stealing:tuning.stealing ~seen_of
          ~considered ~matches cdeps d ~lo ~hi
      in
      (* advance only after a completed scan: a cancelled scan must not
         move the watermark past the last resumable boundary *)
      wm := hi;
      triggers
    end
    else begin
      let delta = Structure.delta_since d !wm in
      let new_wm = Structure.watermark d in
      if !Obs.metrics_on then Obs.Metrics.observe h_delta (List.length delta);
      let triggers =
        collect_triggers ~delta ~note ~seen_of ~considered ~matches cdeps d
      in
      wm := new_wm;
      triggers
    end
  in
  let apply on_fire triggers =
    if par then
      let staged =
        match tuning.par_fire with
        | `Seq -> false
        | `Staged -> true
        | `Auto -> jobs > 1 || Resilience.Failpoint.active ()
      in
      if staged then
        apply_triggers_par ~on_fire ~jobs ~stealing:tuning.stealing triggers d
      else apply_triggers_delta ~on_fire triggers d
    else apply_triggers_delta ~on_fire triggers d
  in
  let span = if par then "tgd.chase(par)" else "tgd.chase(seminaive)" in
  run_engine ~span ~governor ~max_stages ~stop ~on_fire ~considered ~matches
    ~collect ~apply ~make_snapshot ~snapshot_every ~on_snapshot ~start_stage
    ~start_applications:apps0 d

let run_seminaive ?(governor = G.unlimited) ?(max_stages = max_int)
    ?(stop = fun _ -> false) ?(on_fire = no_fire) ?(snapshot_every = 1)
    ?on_snapshot ?from deps d =
  run_delta ~par:false ~governor ~max_stages ~stop ~on_fire ~snapshot_every
    ~on_snapshot ~from deps d

let run_par ?jobs ?tuning ?(governor = G.unlimited) ?(max_stages = max_int)
    ?(stop = fun _ -> false) ?(on_fire = no_fire) ?(snapshot_every = 1)
    ?on_snapshot ?from deps d =
  run_delta ~par:true ?jobs ?tuning ~governor ~max_stages ~stop ~on_fire
    ~snapshot_every ~on_snapshot ~from deps d

(* The semi-oblivious (skolem) chase: every pair (T, b̄) fires exactly
   once, whether or not the head is already satisfied.  It diverges more
   often than the paper's lazy chase — condition ­ is exactly what keeps
   chase(T_Q, ·) tame — and exists here as the ablation baseline. *)
let run_oblivious ?(governor = G.unlimited) ?(max_stages = max_int)
    ?(stop = fun _ -> false) ?(on_fire = no_fire) deps d =
  let fired = Hashtbl.create 256 in
  let applications = ref 0 in
  let considered = ref 0 in
  let matches = ref 0 in
  let finish i outcome =
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      body_matches = !matches;
      fixpoint = (outcome = G.Fixpoint);
      outcome;
    }
  in
  let cdeps = List.map (fun dep -> compile_dep dep) deps in
  let max_stages = min max_stages governor.G.max_stages in
  let rec go i =
    match G.interrupted governor with
    | Some o -> finish (i - 1) o
    | None ->
    if i > max_stages then finish (i - 1) (G.Budget G.Stages)
    else begin
      Structure.set_stage d i;
      let n = ref 0 in
      Obs.Trace.with_span "tgd.stage"
        ~args:(fun () -> [ ("stage", i); ("fired", !n) ])
        (fun () ->
          let triggers = ref [] in
          List.iter
            (fun cd ->
              let fi = Lazy.force cd.fr_stage in
              Hom.Plan.iter_slots (Lazy.force cd.body_plan) d (fun slots ->
                  incr matches;
                  if !Obs.metrics_on then Obs.Metrics.incr c_matches;
                  let key = key_of fi slots in
                  let dkey = (Dep.name cd.dep, key) in
                  if not (Hashtbl.mem fired dkey) then begin
                    Hashtbl.replace fired dkey ();
                    incr considered;
                    if !Obs.metrics_on then Obs.Metrics.incr c_considered;
                    triggers := (cd.dep, binding_of_key fi key) :: !triggers
                  end))
            cdeps;
          n := List.length !triggers;
          List.iter
            (fun (dep, fb) ->
              on_fire ~stage:i dep fb;
              apply d dep fb;
              if !Obs.metrics_on then Obs.Metrics.incr c_firings)
            (List.rev !triggers));
      applications := !applications + !n;
      if !n = 0 then finish i G.Fixpoint
      else begin
        match
          G.over_budget governor ~elems:(Structure.card d)
            ~facts:(Structure.size d)
        with
        | Some o -> finish i o
        | None -> if stop d then finish i (G.Budget G.Stop) else go (i + 1)
      end
    end
  in
  Obs.Trace.with_span "tgd.chase(oblivious)" (fun () -> go 1)

(* The engine front door.  Semi-naive is the default: it implements the
   same lazy stage semantics as [`Stage] (equal structures, equal firing
   sequence) with per-stage work proportional to the delta rather than to
   the whole structure.  [`Par] is semi-naive with sharded discovery;
   [jobs] bounds its worker count (ignored by the other engines). *)
let run ?(engine = `Seminaive) ?jobs ?tuning ?governor ?max_stages ?stop
    ?on_fire ?snapshot_every ?on_snapshot deps d =
  match engine with
  | `Stage ->
      run_stage ?governor ?max_stages ?stop ?on_fire ?snapshot_every
        ?on_snapshot deps d
  | `Seminaive ->
      run_seminaive ?governor ?max_stages ?stop ?on_fire ?snapshot_every
        ?on_snapshot deps d
  | `Oblivious -> run_oblivious ?governor ?max_stages ?stop ?on_fire deps d
  | `Par ->
      run_par ?jobs ?tuning ?governor ?max_stages ?stop ?on_fire
        ?snapshot_every ?on_snapshot deps d

(* Continue a checkpointed run on the snapshot's own structure (clone the
   snapshot first to keep it reusable).  Stage numbering, the watermark,
   the persistent dedup tables and every counter pick up exactly where
   the snapshot left them, so prefix + resume is bit-identical — facts,
   firing sequence and stats — to one uninterrupted run. *)
let resume ?jobs ?tuning ?governor ?max_stages ?stop ?on_fire ?snapshot_every
    ?on_snapshot deps snap =
  let d = snap.snap_structure in
  let stats =
    match snap.snap_engine with
    | `Stage ->
        run_stage ?governor ?max_stages ?stop ?on_fire ?snapshot_every
          ?on_snapshot ~from:snap deps d
    | `Seminaive ->
        run_seminaive ?governor ?max_stages ?stop ?on_fire ?snapshot_every
          ?on_snapshot ~from:snap deps d
    | `Par ->
        run_par ?jobs ?tuning ?governor ?max_stages ?stop ?on_fire
          ?snapshot_every ?on_snapshot ~from:snap deps d
    | `Oblivious -> invalid_arg "Chase.resume: oblivious runs cannot resume"
  in
  (stats, d)

(* Does D satisfy all the dependencies?  Short-circuits on the first
   active trigger instead of materialising every dependency's trigger
   list. *)
let models deps d = not (List.exists (fun dep -> has_active_trigger dep d) deps)

(* The first violated dependency in the order of [deps], with its least
   active frontier binding — deterministic, and cheap on satisfied
   prefixes because each dependency is first probed with the
   short-circuiting check. *)
let find_violation deps d =
  List.find_map
    (fun dep ->
      if not (has_active_trigger dep d) then None
      else
        match active_triggers_of dep d with
        | fb :: _ -> Some (dep, fb)
        | [] -> None)
    deps

(* Incremental maintenance of a chased structure under base edits
   (insertions AND retractions), in the spirit of counting / DRed view
   maintenance, but over the lazy chase rather than Datalog.

   The chase is non-monotone (condition ­ withholds a firing when a head
   witness already exists), so maintaining the *identical* structure that
   a from-scratch chase would build is hopeless in general: retracting
   the fact that witnessed a head un-withholds an old trigger whose
   firing order can no longer be replayed.  What CAN be maintained
   cheaply is a *universal model* of the edited base: every fact kept
   alive is grounded in a derivation from the edited base, and the
   structure is run back to a chase fixpoint.  Such a structure is
   hom-equivalent to the from-scratch chase, so every CQ answer over
   constants — the view level served to clients — is bit-identical.

   Bookkeeping, rebuilt from the engine's own journals after each run:

   - a FIRED record per fired (TGD, frontier key): one body witness (the
     instantiated body atoms of a match), the full head instance it
     created (its products — including head atoms that were already
     present, recovered by replaying the fire plan against the journal
     segment), and the support edges product -> record;
   - a WITHHELD record per considered-but-witnessed key: the head
     instance that witnessed it;
   - [uses]: fact -> records whose recorded witness mentions it.

   Retraction = counting cascade + DRed re-exam: kill records whose
   witness died, over-delete products whose support count reaches zero
   (base facts count as their own support), then re-examine each killed
   key in canonical (TGD, key) order — a frontier-bound [Hom.find] —
   re-withholding, re-firing (re-adding the recorded head instance, so
   surviving nulls keep their identity), or leaving it dead.  Insertions
   and re-fired products land past the pre-edit watermark, so one
   semi-naive continuation — an ordinary [run_delta] resumed from a
   synthetic snapshot whose seen-keys are the live records — runs the
   structure back to a fixpoint.  Preemption comes for free: the
   continuation takes any governor, and a cut run leaves the records
   conservative (unconsumed delta is rescanned on the next slice). *)
module Maint = struct
  type op = Insert of Fact.t | Retract of Fact.t

  type record = {
    r_di : int;
    r_key : int array;
    mutable r_witness : Fact.t array; (* body witness of a fired record *)
    mutable r_products : Fact.t array; (* full head instance of a firing *)
    mutable r_born : bool array;
        (* per product: was it added by THIS firing?  Only born facts
           draw support from the record — a pre-existing head atom has
           its own derivation, and counting it here would forge a
           support cycle (the atom witnessing a record that props the
           atom up).  Pre-existing atoms register in [m_uses] instead:
           their death voids the head instance and kills the record. *)
    mutable r_head_wit : Fact.t array; (* head witness of a withheld one *)
    mutable r_fired : bool;
    mutable r_alive : bool;
  }

  type t = {
    m_deps : Dep.t list;
    m_dep_arr : Dep.t array;
    m_cdeps : cdep array;
    m_frnames : string array array; (* frontier vars, canonical order *)
    m_engine : [ `Seminaive | `Par ];
    m_jobs : int option;
    m_d : Structure.t;
    m_recs : (int array, record) Hashtbl.t array; (* per dep: key -> record *)
    m_supports : record list ref Fact.Tbl.t; (* product -> producing records *)
    m_uses : record list ref Fact.Tbl.t; (* witness fact -> records *)
    m_base : unit Fact.Tbl.t;
    mutable m_stage : int; (* last completed absolute stage *)
    mutable m_wm : int; (* continuation watermark *)
    mutable m_considered : int;
    mutable m_matches : int;
    mutable m_applications : int;
    mutable m_pending : bool; (* last run ended short of fixpoint *)
    mutable m_grave : int; (* records evicted from [m_recs], not yet swept *)
  }

  type edit_stats = {
    e_retracted : int; (* base retractions processed *)
    e_inserted : int; (* base facts newly added *)
    e_killed : int; (* facts over-deleted by the cascade *)
    e_refired : int; (* re-exam re-derivations *)
    e_rewithheld : int; (* re-exam keys re-witnessed *)
    e_run : stats; (* the continuation run *)
  }

  let structure t = t.m_d
  let pending t = t.m_pending
  let base_facts t = Fact.Tbl.fold (fun f () acc -> f :: acc) t.m_base []

  let di_of t dep =
    let n = Array.length t.m_dep_arr in
    let rec go i =
      if i >= n then invalid_arg "Chase.Maint: unknown dependency"
      else if t.m_dep_arr.(i) == dep then i
      else go (i + 1)
    in
    go 0

  let key_of_binding fb =
    Array.of_list (List.map snd (Term.Var_map.bindings fb))

  let binding_of_key' t di key =
    let names = t.m_frnames.(di) in
    let m = ref Term.Var_map.empty in
    Array.iteri (fun i x -> m := Term.Var_map.add x key.(i) !m) names;
    !m

  (* Instantiate atoms under a full binding (constants resolve through the
     structure's constant table — they exist, the atoms matched). *)
  let inst_atoms d b atoms =
    Array.of_list
      (List.map
         (fun atom ->
           let args =
             List.map
               (fun tm ->
                 match tm with
                 | Term.Cst c -> Structure.constant d c
                 | Term.Var x -> Term.Var_map.find x b)
               (Atom.args atom)
           in
           Fact.make (Atom.sym atom) (Array.of_list args))
         atoms)

  let body_binding t di key =
    Hom.find ~init:(binding_of_key' t di key) t.m_d
      (Dep.body t.m_dep_arr.(di))

  let body_witness t di key =
    match body_binding t di key with
    | None -> None
    | Some b -> Some (inst_atoms t.m_d b (Dep.body t.m_dep_arr.(di)))

  (* A body witness whose facts all predate journal position [wm] — the
     structure as the firing saw it.  An arbitrary current match could
     include the firing's own products ("R1(y) matched by the R1(v) this
     very record added"), making the record self-justifying: support
     must be well-founded in firing order, so each witness may only use
     facts born strictly before the fire. *)
  let body_witness_before t di key wm =
    let body = Dep.body t.m_dep_arr.(di) in
    let found = ref None in
    (try
       Hom.iter_all ~init:(binding_of_key' t di key) t.m_d body (fun b ->
           let w = inst_atoms t.m_d b body in
           if
             Array.for_all
               (fun f ->
                 match Structure.fact_id t.m_d f with
                 | Some id -> id < wm
                 | None -> false)
               w
           then begin
             found := Some w;
             raise Exit
           end)
     with Exit -> ());
    !found

  let head_witness t di key =
    match
      Hom.find ~init:(binding_of_key' t di key) t.m_d
        (Dep.head t.m_dep_arr.(di))
    with
    | None -> None
    | Some b -> Some (inst_atoms t.m_d b (Dep.head t.m_dep_arr.(di)))

  let add_edge tbl f r =
    match Fact.Tbl.find_opt tbl f with
    | Some rs -> if not (List.memq r !rs) then rs := r :: !rs
    | None -> Fact.Tbl.replace tbl f (ref [ r ])

  let supported t f =
    match Fact.Tbl.find_opt t.m_supports f with
    | Some rs -> List.exists (fun r -> r.r_alive && r.r_fired) !rs
    | None -> false

  (* A record evicted from [m_recs] by a newer firing of its key can
     never be revived (re-exam requires it to still be current), but it
     lingers in the per-fact support/use lists, where every cascade walk
     and [add_edge] dedup pays for it — left alone, the cost of an edit
     grows with the whole edit history, not the live instance.  Amortized
     sweep: once the graveyard outgrows the live population, rebuild both
     tables keeping only records still current for their key.  Alive
     records are always current (the engine only fires unseen keys, and
     seen = alive), so the sweep drops exactly the unrevivable. *)
  let current t r =
    match Hashtbl.find_opt t.m_recs.(r.r_di) r.r_key with
    | Some r' -> r' == r
    | None -> false

  let compact t =
    let live =
      Array.fold_left (fun n tbl -> n + Hashtbl.length tbl) 0 t.m_recs
    in
    if t.m_grave > 64 + live then begin
      let sweep tbl =
        let empty = ref [] in
        Fact.Tbl.iter
          (fun f rs ->
            let rs' = List.filter (current t) !rs in
            if rs' = [] then empty := f :: !empty else rs := rs')
          tbl;
        List.iter (Fact.Tbl.remove tbl) !empty
      in
      sweep t.m_supports;
      sweep t.m_uses;
      t.m_grave <- 0
    end

  (* The full head instance of a firing, from its fire plan, frontier key
     and journal segment (the facts the firing actually added, in
     traversal order).  Head atoms already present at fire time are
     missing from the segment; the replay walks the atoms in plan order,
     consuming segment facts exactly when an atom introduces an unseen
     fresh element (a fact with a brand-new element cannot pre-exist, so
     every first-use atom is in the segment), and recomputes the others
     from the resolved placeholders.  Each instance atom comes with a
     born flag: did THIS firing add the fact (it was consumed from the
     segment), or did it pre-exist? *)
  let full_head_instance d fp key segment =
    let freshes = Array.make (max fp.fp_nfresh 1) (-1) in
    let wi = ref 0 in
    let out = ref [] in
    let born = ref [] in
    let natoms = Array.length fp.fp_syms in
    for a = 0 to natoms - 1 do
      let codes = fp.fp_args.(a) in
      let unresolved =
        Array.exists
          (fun v -> v < 0 && -v land 1 = 1 && freshes.((-v - 1) / 2) < 0)
          codes
      in
      if unresolved then begin
        if !wi >= Array.length segment then
          invalid_arg "Chase.Maint: fire replay desynchronised";
        let p = segment.(!wi) in
        incr wi;
        let pargs = Fact.args p in
        Array.iteri
          (fun pos v ->
            if v < 0 && -v land 1 = 1 then begin
              let k = (-v - 1) / 2 in
              if freshes.(k) < 0 then freshes.(k) <- pargs.(pos)
            end)
          codes;
        out := p :: !out;
        born := true :: !born
      end
      else begin
        let args =
          Array.map
            (fun v ->
              if v >= 0 then key.(v / 2)
              else
                let m = -v in
                if m land 1 = 1 then freshes.((m - 1) / 2)
                else Structure.constant d fp.fp_consts.((m - 2) / 2))
            codes
        in
        let g = Fact.make fp.fp_syms.(a) args in
        let added =
          !wi < Array.length segment && Fact.equal segment.(!wi) g
        in
        if added then incr wi;
        out := g :: !out;
        born := added :: !born
      end
    done;
    (Array.of_list (List.rev !out), Array.of_list (List.rev !born))

  (* Register a fired record against its head instance: born facts draw
     support from it, pre-existing ones become uses (their death kills
     the record, like a witness). *)
  let register_products t r =
    Array.iteri
      (fun i g ->
        if r.r_born.(i) then add_edge t.m_supports g r
        else add_edge t.m_uses g r)
      r.r_products

  (* The engine's persistent seen-keys, reconstructed from the live
     records: this is what a continuation must skip. *)
  let seen_dump t =
    let acc = ref [] in
    Array.iteri
      (fun di tbl ->
        let keys =
          Hashtbl.fold (fun k r l -> if r.r_alive then k :: l else l) tbl []
        in
        if keys <> [] then acc := (di, List.sort compare keys) :: !acc)
      t.m_recs;
    List.sort compare !acc

  (* Run the engine from the current watermark with the live records as
     seen state, observing every firing and first consideration, then
     fold the run's journals back into records. *)
  let tracked_run ?(governor = G.unlimited) ?(max_stages = max_int) t =
    let d = t.m_d in
    let fire_log = ref [] in
    let consider_log = ref [] in
    let cur_stage = ref (-1) in
    let stage_wm = ref t.m_wm in
    let fired_any = ref false in
    let on_fire ~stage dep fb =
      let di = di_of t dep in
      let key = key_of_binding fb in
      let wm = Structure.watermark d in
      if stage <> !cur_stage then begin
        cur_stage := stage;
        stage_wm := wm
      end;
      fired_any := true;
      fire_log := (di, key, wm) :: !fire_log
    in
    let note di key = consider_log := (di, key) :: !consider_log in
    let snap =
      {
        snap_engine = (t.m_engine :> engine);
        snap_stage = t.m_stage;
        snap_wm = t.m_wm;
        snap_seen = seen_dump t;
        snap_considered = t.m_considered;
        snap_matches = t.m_matches;
        snap_applications = t.m_applications;
        snap_deps = deps_signature t.m_deps;
        snap_structure = d;
      }
    in
    let abs_max =
      if max_stages = max_int then max_int else t.m_stage + max_stages
    in
    let stats =
      run_delta ~par:(t.m_engine = `Par) ?jobs:t.m_jobs ~note ~governor
        ~max_stages:abs_max
        ~stop:(fun _ -> false)
        ~on_fire ~snapshot_every:1 ~on_snapshot:None ~from:(Some snap) t.m_deps
        d
    in
    t.m_stage <- stats.stages;
    t.m_considered <- stats.triggers_considered;
    t.m_matches <- stats.body_matches;
    t.m_applications <- stats.applications;
    t.m_pending <- stats.outcome <> G.Fixpoint;
    (* Where must the next continuation rescan from?  After a clean
       fixpoint: nothing.  After a budget cut at a stage boundary the
       engine's watermark sat at the last completed stage's collect
       point — the watermark seen by that stage's first firing.  A
       cancelled or faulted run may have died mid-stage; keeping the old
       watermark merely rescans (records dedup), never loses. *)
    (match stats.outcome with
    | G.Fixpoint -> t.m_wm <- Structure.watermark d
    | G.Budget _ | G.Deadline -> if !fired_any then t.m_wm <- !stage_wm
    | G.Cancelled | G.Faulted _ -> ());
    (* Fold the firing journal into FIRED records: products are the
       journal segment between consecutive firings, completed to the full
       head instance by the fire-plan replay. *)
    let fires = Array.of_list (List.rev !fire_log) in
    let final_wm = Structure.watermark d in
    Array.iteri
      (fun i (di, key, wm) ->
        let wm_next =
          if i + 1 < Array.length fires then
            let _, _, w = fires.(i + 1) in
            w
          else final_wm
        in
        let seg =
          Array.init (wm_next - wm) (fun j -> Structure.id_fact d (wm + j))
        in
        let fp = Lazy.force t.m_cdeps.(di).fire_plan in
        let products, born = full_head_instance d fp key seg in
        let r =
          {
            r_di = di;
            r_key = key;
            r_witness = [||];
            r_products = products;
            r_born = born;
            r_head_wit = [||];
            r_fired = true;
            r_alive = true;
          }
        in
        if Hashtbl.mem t.m_recs.(di) key then t.m_grave <- t.m_grave + 1;
        Hashtbl.replace t.m_recs.(di) key r;
        register_products t r)
      fires;
    (* Witness pass, after the structure settled: nothing is deleted
       during a run, so the firing-time body match — all its facts below
       the fire watermark — is still live and is found again.  (The
       unbounded fallback is unreachable; it merely keeps a desync
       non-fatal.) *)
    Array.iter
      (fun (di, key, wm) ->
        match Hashtbl.find_opt t.m_recs.(di) key with
        | Some r when r.r_alive && r.r_fired && r.r_witness = [||] -> (
            match
              match body_witness_before t di key wm with
              | Some w -> Some w
              | None -> body_witness t di key
            with
            | Some w ->
                r.r_witness <- w;
                Array.iter (fun f -> add_edge t.m_uses f r) w
            | None -> ())
        | _ -> ())
      fires;
    (* Considered-but-unfired keys become WITHHELD records — unless no
       head witness exists yet (a pending trigger of an aborted stage),
       in which case the key stays unseen and the conservative watermark
       guarantees rediscovery. *)
    List.iter
      (fun (di, key) ->
        match Hashtbl.find_opt t.m_recs.(di) key with
        | Some r when r.r_alive -> ()
        | _ -> (
            match head_witness t di key with
            | Some hw ->
                let r =
                  {
                    r_di = di;
                    r_key = key;
                    r_witness = [||];
                    r_products = [||];
                    r_born = [||];
                    r_head_wit = hw;
                    r_fired = false;
                    r_alive = true;
                  }
                in
                if Hashtbl.mem t.m_recs.(di) key then
                  t.m_grave <- t.m_grave + 1;
                Hashtbl.replace t.m_recs.(di) key r;
                Array.iter (fun f -> add_edge t.m_uses f r) hw
            | None -> ()))
      (List.rev !consider_log);
    stats

  (* Chase the base structure to a fixpoint under maintenance tracking.
     Every fact already in [d] is a base fact. *)
  let create ?(engine = `Seminaive) ?jobs ?governor ?max_stages deps d =
    let dep_arr = Array.of_list deps in
    let t =
      {
        m_deps = deps;
        m_dep_arr = dep_arr;
        m_cdeps = Array.map compile_dep dep_arr;
        m_frnames =
          Array.map
            (fun dep ->
              Array.of_list (Term.Var_set.elements (Dep.frontier dep)))
            dep_arr;
        m_engine = engine;
        m_jobs = jobs;
        m_d = d;
        m_recs = Array.map (fun _ -> Hashtbl.create 64) dep_arr;
        m_supports = Fact.Tbl.create 256;
        m_uses = Fact.Tbl.create 256;
        m_base = Fact.Tbl.create 64;
        m_stage = 0;
        m_wm = 0;
        m_considered = 0;
        m_matches = 0;
        m_applications = 0;
        m_pending = false;
        m_grave = 0;
      }
    in
    Structure.iter_facts d (fun f -> Fact.Tbl.replace t.m_base f ());
    let stats = tracked_run ?governor ?max_stages t in
    (t, stats)

  (* Resume a continuation cut by the governor (preemption slice). *)
  let continue_ ?governor ?max_stages t = tracked_run ?governor ?max_stages t

  let apply_edit ?governor ?max_stages t ops =
    if t.m_pending then
      invalid_arg "Chase.Maint.apply_edit: continuation pending (continue_)";
    compact t;
    let d = t.m_d in
    Structure.set_stage d t.m_stage;
    (* Net effect per fact: the last op wins. *)
    let net = Fact.Tbl.create 16 in
    List.iter
      (function
        | Insert f -> Fact.Tbl.replace net f true
        | Retract f -> Fact.Tbl.replace net f false)
      ops;
    let part want =
      Fact.Tbl.fold (fun f v acc -> if v = want then f :: acc else acc) net []
      |> List.sort Fact.compare
    in
    let retracts = part false and inserts = part true in
    (* Counting cascade: drop base flags, over-delete unsupported facts,
       kill every record whose recorded witness died. *)
    let killq = Queue.create () in
    let n_retracted = ref 0 and n_killed = ref 0 in
    let reexam = ref [] in
    List.iter
      (fun f ->
        if Fact.Tbl.mem t.m_base f then begin
          Fact.Tbl.remove t.m_base f;
          incr n_retracted
        end;
        if Structure.mem d f && not (supported t f) then Queue.add f killq)
      retracts;
    while not (Queue.is_empty killq) do
      let f = Queue.pop killq in
      if
        Structure.mem d f
        && (not (Fact.Tbl.mem t.m_base f))
        && not (supported t f)
      then begin
        ignore (Structure.retract_fact d f);
        incr n_killed;
        match Fact.Tbl.find_opt t.m_uses f with
        | None -> ()
        | Some rs ->
            List.iter
              (fun r ->
                if r.r_alive then begin
                  r.r_alive <- false;
                  reexam := r :: !reexam;
                  if r.r_fired then
                    (* only born products drew support from this record;
                       pre-existing head atoms have their own lifeline *)
                    Array.iteri
                      (fun i g ->
                        if
                          r.r_born.(i)
                          && Structure.mem d g
                          && (not (Fact.Tbl.mem t.m_base g))
                          && not (supported t g)
                        then Queue.add g killq)
                      r.r_products
                end)
              !rs
      end
    done;
    (* DRed re-exam, canonical (TGD, key) order: each killed key either
       no longer matches, is re-witnessed, or re-fires — re-adding its
       recorded head instance so surviving nulls keep their identity. *)
    let reexam =
      List.sort
        (fun a b ->
          let c = compare a.r_di b.r_di in
          if c <> 0 then c else compare a.r_key b.r_key)
        !reexam
    in
    let n_refired = ref 0 and n_rewithheld = ref 0 in
    List.iter
      (fun r ->
        let current = Hashtbl.find_opt t.m_recs.(r.r_di) r.r_key in
        if current = Some r && not r.r_alive then
          match body_binding t r.r_di r.r_key with
          | None -> () (* inactive: stays dead, key stays unseen *)
          | Some b -> (
              (* the witness must come from this pre-re-add match: a
                 search after the products return could pick them up and
                 leave the record self-justifying *)
              let w = inst_atoms d b (Dep.body t.m_dep_arr.(r.r_di)) in
              match head_witness t r.r_di r.r_key with
              | Some hw ->
                  r.r_fired <- false;
                  r.r_head_wit <- hw;
                  r.r_alive <- true;
                  incr n_rewithheld;
                  Array.iter (fun f -> add_edge t.m_uses f r) hw
              | None ->
                  (if r.r_fired && r.r_products <> [||] then
                     (* re-add the recorded head instance (surviving
                        nulls keep their identity) and reclassify: born
                        is whatever THIS re-firing actually adds *)
                     r.r_born <-
                       Array.map (fun g -> Structure.add_fact d g) r.r_products
                   else begin
                     (* first firing of a formerly withheld key *)
                     let dep = t.m_dep_arr.(r.r_di) in
                     let fb = binding_of_key' t r.r_di r.r_key in
                     let w0 = Structure.watermark d in
                     apply d dep fb;
                     let seg =
                       Array.init
                         (Structure.watermark d - w0)
                         (fun j -> Structure.id_fact d (w0 + j))
                     in
                     let fp = Lazy.force t.m_cdeps.(r.r_di).fire_plan in
                     let products, born =
                       full_head_instance d fp r.r_key seg
                     in
                     r.r_products <- products;
                     r.r_born <- born;
                     r.r_fired <- true
                   end);
                  r.r_alive <- true;
                  incr n_refired;
                  register_products t r;
                  r.r_witness <- w;
                  Array.iter (fun f -> add_edge t.m_uses f r) w))
      reexam;
    (* A record still dead after re-exam has no body match left — its
       key can never fire again as recorded (a later re-fire goes
       through the engine and builds a fresh record anyway).  Drop it
       from [m_recs] so the key table and [seen_dump] track the live
       instance, not the whole edit history, and count it into the
       graveyard so the support lists get swept too. *)
    List.iter
      (fun r ->
        if not r.r_alive then begin
          (match Hashtbl.find_opt t.m_recs.(r.r_di) r.r_key with
          | Some r' when r' == r -> Hashtbl.remove t.m_recs.(r.r_di) r.r_key
          | _ -> ());
          t.m_grave <- t.m_grave + 1
        end)
      reexam;
    (* Insertions: base facts past the pre-edit watermark, so the
       continuation's delta scan picks them up. *)
    let n_inserted = ref 0 in
    List.iter
      (fun f ->
        Fact.Tbl.replace t.m_base f ();
        if Structure.add_fact d f then incr n_inserted)
      inserts;
    (* One semi-naive continuation back to the fixpoint (or to the
       governor's cut — resume with [continue_]). *)
    let run = tracked_run ?governor ?max_stages t in
    {
      e_retracted = !n_retracted;
      e_inserted = !n_inserted;
      e_killed = !n_killed;
      e_refired = !n_refired;
      e_rewithheld = !n_rewithheld;
      e_run = run;
    }

  (* Internal-consistency audit for the tests: every live fact is base or
     supported by an alive firing, every alive record's recorded facts
     are live.  Returns human-readable violations. *)
  let check t =
    let d = t.m_d in
    let bad = ref [] in
    let fail fmt = Format.kasprintf (fun s -> bad := s :: !bad) fmt in
    Structure.iter_facts d (fun f ->
        if (not (Fact.Tbl.mem t.m_base f)) && not (supported t f) then
          fail "unsupported live fact %a" (Relational.Fact.pp ()) f);
    Fact.Tbl.iter
      (fun f () ->
        if not (Structure.mem d f) then
          fail "base fact not live %a" (Relational.Fact.pp ()) f)
      t.m_base;
    Array.iter
      (fun tbl ->
        Hashtbl.iter
          (fun _ r ->
            if r.r_alive then begin
              let live what fs =
                Array.iter
                  (fun f ->
                    if not (Structure.mem d f) then
                      fail "dead %s fact of alive record (dep %d) %a" what
                        r.r_di (Relational.Fact.pp ()) f)
                  fs
              in
              if r.r_fired then begin
                live "witness" r.r_witness;
                live "product" r.r_products
              end
              else live "head-witness" r.r_head_wit
            end)
          tbl)
      t.m_recs;
    List.rev !bad
end

(* Convenience alias: the edit entry point at the [Chase] top level. *)
let apply_edit = Maint.apply_edit
