(** The chase (Section II.C).

    The paper's chase is "lazy": a pair (T, b̄) fires only when the body
    matches at the frontier tuple b̄ (condition ¬) and no head witness
    exists yet (condition ­).  A stage enumerates the pairs over the
    stage-start structure and applies the survivors, re-checking ­ as the
    structure grows; [chase_i] is the structure after stage [i]. *)

open Relational

type stats = {
  stages : int;              (** stages executed *)
  applications : int;        (** TGD firings *)
  triggers_considered : int; (** deduplicated body matches examined *)
  fixpoint : bool;           (** no trigger was active at the last stage *)
}

val pp_stats : Format.formatter -> stats -> unit

(** Trigger-discovery engines.  [`Stage] re-enumerates every body
    homomorphism against the whole structure at every stage; [`Seminaive]
    (the default) only matches bodies against homomorphisms that use at
    least one fact added since the previous stage, which is equivalent —
    conditions ¬ and ­ are monotone, so stale matches are inactive forever
    — and asymptotically cheaper; [`Oblivious] is the skolem chase
    baseline ({!run_oblivious}). *)
type engine = [ `Stage | `Seminaive | `Oblivious ]

val pp_engine : Format.formatter -> engine -> unit

(** Restrict a body binding to the frontier: the b̄ of the paper. *)
val frontier_binding : Dep.t -> Hom.binding -> Hom.binding

(** Condition ­: [D ⊨ ∃z̄ Ψ(z̄, b̄)]. *)
val head_satisfied : Structure.t -> Dep.t -> Hom.binding -> bool

(** Fire (T, b̄): add a fresh copy of A[Ψ] glued along b̄. *)
val apply : Structure.t -> Dep.t -> Hom.binding -> unit

(** The active pairs (T, b̄) of the current structure, deduplicated by
    frontier tuple and sorted in the canonical firing order (TGD index,
    then frontier tuple). *)
val active_triggers : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) list

(** One stage; returns the number of firings. *)
val chase_stage : Dep.t list -> Structure.t -> int

(** Run the chase in place for at most [max_stages] stages, until the
    fixpoint, or until [stop] holds (checked after each stage).  Stage
    numbers stamp provenance into the structure.  [engine] selects the
    trigger-discovery engine (default [`Seminaive]); all engines share the
    canonical per-stage firing order, so [`Stage] and [`Seminaive] build
    identical structures, fresh element ids included. *)
val run :
  ?engine:engine ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  Dep.t list ->
  Structure.t ->
  stats

(** The stage engine: full re-enumeration each stage ([run ~engine:`Stage]). *)
val run_stage :
  ?max_stages:int -> ?stop:(Structure.t -> bool) -> Dep.t list -> Structure.t -> stats

(** The semi-naive engine: delta-restricted trigger discovery
    ([run ~engine:`Seminaive], the default). *)
val run_seminaive :
  ?max_stages:int -> ?stop:(Structure.t -> bool) -> Dep.t list -> Structure.t -> stats

(** The semi-oblivious (skolem) chase: each pair (T, b̄) fires exactly
    once, regardless of condition ­.  Diverges more often than the lazy
    chase; kept as the ablation baseline. *)
val run_oblivious :
  ?max_stages:int -> ?stop:(Structure.t -> bool) -> Dep.t list -> Structure.t -> stats

(** Does the structure satisfy all dependencies (no active trigger)? *)
val models : Dep.t list -> Structure.t -> bool

(** The first violated dependency with a witness binding, for reporting. *)
val find_violation : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) option
