(** The chase (Section II.C).

    The paper's chase is "lazy": a pair (T, b̄) fires only when the body
    matches at the frontier tuple b̄ (condition ¬) and no head witness
    exists yet (condition ­).  A stage enumerates the pairs over the
    stage-start structure and applies the survivors, re-checking ­ as the
    structure grows; [chase_i] is the structure after stage [i]. *)

open Relational

type stats = {
  stages : int;              (** stages executed *)
  applications : int;        (** TGD firings *)
  triggers_considered : int;
      (** distinct (TGD, frontier tuple) pairs examined.  Body matches are
          deduplicated by frontier key before they count: two matches that
          differ only in their existential witnesses are the same pair
          (T, b̄) of the paper and count once.  For the lazy engines the
          dedup table is per-stage ([`Stage]) or per-run ([`Seminaive],
          whose persistent tables make the counts comparable across
          engines); for [`Oblivious] it is per-run.  The paper's raw pair
          enumeration — every body homomorphism — is [body_matches]. *)
  body_matches : int;
      (** raw body matches enumerated, before frontier deduplication —
          the cost driver of trigger discovery. *)
  fixpoint : bool;           (** no trigger was active at the last stage *)
}

val pp_stats : Format.formatter -> stats -> unit

(** Trigger-discovery engines.  [`Stage] re-enumerates every body
    homomorphism against the whole structure at every stage; [`Seminaive]
    (the default) only matches bodies against homomorphisms that use at
    least one fact added since the previous stage, which is equivalent —
    conditions ¬ and ­ are monotone, so stale matches are inactive forever
    — and asymptotically cheaper; [`Par] is semi-naive with discovery
    fanned out over a domain pool (disjoint delta shards, canonical
    sorted merge, sequential firing — still bit-identical); [`Oblivious]
    is the skolem chase baseline ({!run_oblivious}). *)
type engine = [ `Stage | `Seminaive | `Oblivious | `Par ]

val pp_engine : Format.formatter -> engine -> unit

(** Restrict a body binding to the frontier: the b̄ of the paper. *)
val frontier_binding : Dep.t -> Hom.binding -> Hom.binding

(** Condition ­: [D ⊨ ∃z̄ Ψ(z̄, b̄)]. *)
val head_satisfied : Structure.t -> Dep.t -> Hom.binding -> bool

(** Fire (T, b̄): add a fresh copy of A[Ψ] glued along b̄. *)
val apply : Structure.t -> Dep.t -> Hom.binding -> unit

(** The active pairs (T, b̄) of the current structure, deduplicated by
    frontier tuple and sorted in the canonical firing order (TGD index,
    then frontier tuple). *)
val active_triggers : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) list

(** [has_active_trigger dep d]: does [dep] have an active trigger?
    Short-circuits on the first one. *)
val has_active_trigger : Dep.t -> Structure.t -> bool

(** One stage; returns the number of firings. *)
val chase_stage : Dep.t list -> Structure.t -> int

(** Run the chase in place for at most [max_stages] stages, until the
    fixpoint, or until [stop] holds (checked after each stage).  Stage
    numbers stamp provenance into the structure.  [engine] selects the
    trigger-discovery engine (default [`Seminaive]); all engines share the
    canonical per-stage firing order, so [`Stage] and [`Seminaive] build
    identical structures, fresh element ids included.  [on_fire] observes
    every firing in order — (stage, TGD, frontier binding) — before its
    head atoms are added; the oracle's differential runner records the
    firing sequence through it.  [jobs] bounds the [`Par] engine's worker
    count (default [Pool.default_jobs ()]; ignored by other engines). *)
val run :
  ?engine:engine ->
  ?jobs:int ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** The stage engine: full re-enumeration each stage ([run ~engine:`Stage]). *)
val run_stage :
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** The semi-naive engine: delta-restricted trigger discovery
    ([run ~engine:`Seminaive], the default). *)
val run_seminaive :
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** The parallel engine ([run ~engine:`Par]): semi-naive trigger
    discovery sharded over a {!Relational.Pool} of domains.  Workers
    enumerate body matches over disjoint delta shards (reading the
    structure only); the matches are merged in canonical sort order,
    deduplicated, head-checked and fired sequentially, so structures,
    stats and firing sequences are bit-identical to [`Seminaive].
    Hom-level effort counters are approximate when [jobs > 1]. *)
val run_par :
  ?jobs:int ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** The semi-oblivious (skolem) chase: each pair (T, b̄) fires exactly
    once, regardless of condition ­.  Diverges more often than the lazy
    chase; kept as the ablation baseline. *)
val run_oblivious :
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** Does the structure satisfy all dependencies?  Probes each dependency
    with {!has_active_trigger}, so it stops at the first active trigger
    instead of materialising full trigger lists. *)
val models : Dep.t list -> Structure.t -> bool

(** The first violated dependency, deterministically: the dependencies
    are probed in list order, and the witness reported for the first
    violated one is its *least* active frontier binding in the canonical
    trigger order (ascending variable name, then element).  Satisfied
    prefixes cost one short-circuited probe each. *)
val find_violation : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) option
