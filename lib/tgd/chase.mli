(** The chase (Section II.C).

    The paper's chase is "lazy": a pair (T, b̄) fires only when the body
    matches at the frontier tuple b̄ (condition ¬) and no head witness
    exists yet (condition ­).  A stage enumerates the pairs over the
    stage-start structure and applies the survivors, re-checking ­ as the
    structure grows; [chase_i] is the structure after stage [i]. *)

open Relational

type stats = {
  stages : int;        (** stages executed *)
  applications : int;  (** TGD firings *)
  fixpoint : bool;     (** no trigger was active at the last stage *)
}

val pp_stats : Format.formatter -> stats -> unit

(** Restrict a body binding to the frontier: the b̄ of the paper. *)
val frontier_binding : Dep.t -> Hom.binding -> Hom.binding

(** Condition ­: [D ⊨ ∃z̄ Ψ(z̄, b̄)]. *)
val head_satisfied : Structure.t -> Dep.t -> Hom.binding -> bool

(** Fire (T, b̄): add a fresh copy of A[Ψ] glued along b̄. *)
val apply : Structure.t -> Dep.t -> Hom.binding -> unit

(** The active pairs (T, b̄) of the current structure, deduplicated by
    frontier tuple. *)
val active_triggers : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) list

(** One stage; returns the number of firings. *)
val chase_stage : Dep.t list -> Structure.t -> int

(** Run the chase in place for at most [max_stages] stages, until the
    fixpoint, or until [stop] holds (checked after each stage).  Stage
    numbers stamp provenance into the structure. *)
val run : ?max_stages:int -> ?stop:(Structure.t -> bool) -> Dep.t list -> Structure.t -> stats

(** The semi-oblivious (skolem) chase: each pair (T, b̄) fires exactly
    once, regardless of condition ­.  Diverges more often than the lazy
    chase; kept as the ablation baseline. *)
val run_oblivious :
  ?max_stages:int -> ?stop:(Structure.t -> bool) -> Dep.t list -> Structure.t -> stats

(** Does the structure satisfy all dependencies (no active trigger)? *)
val models : Dep.t list -> Structure.t -> bool

(** The first violated dependency with a witness binding, for reporting. *)
val find_violation : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) option
