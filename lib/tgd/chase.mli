(** The chase (Section II.C).

    The paper's chase is "lazy": a pair (T, b̄) fires only when the body
    matches at the frontier tuple b̄ (condition ¬) and no head witness
    exists yet (condition ­).  A stage enumerates the pairs over the
    stage-start structure and applies the survivors, re-checking ­ as the
    structure grows; [chase_i] is the structure after stage [i]. *)

open Relational

type stats = {
  stages : int;              (** stages executed *)
  applications : int;        (** TGD firings *)
  triggers_considered : int;
      (** distinct (TGD, frontier tuple) pairs examined.  Body matches are
          deduplicated by frontier key before they count: two matches that
          differ only in their existential witnesses are the same pair
          (T, b̄) of the paper and count once.  For the lazy engines the
          dedup table is per-stage ([`Stage]) or per-run ([`Seminaive],
          whose persistent tables make the counts comparable across
          engines); for [`Oblivious] it is per-run.  The paper's raw pair
          enumeration — every body homomorphism — is [body_matches]. *)
  body_matches : int;
      (** raw body matches enumerated, before frontier deduplication —
          the cost driver of trigger discovery. *)
  fixpoint : bool;
      (** [outcome = Fixpoint], kept for existing callers *)
  outcome : Resilience.Governor.outcome;
      (** how the run ended: fixpoint, a deterministic budget (stage
          fuel, element/fact budget, a [stop] predicate), the wall-clock
          deadline, cooperative cancellation, or an injected fault. *)
}

val pp_stats : Format.formatter -> stats -> unit

(** Trigger-discovery engines.  [`Stage] re-enumerates every body
    homomorphism against the whole structure at every stage; [`Seminaive]
    (the default) only matches bodies against homomorphisms that use at
    least one fact added since the previous stage, which is equivalent —
    conditions ¬ and ­ are monotone, so stale matches are inactive forever
    — and asymptotically cheaper; [`Par] is semi-naive with discovery
    fanned out over a domain pool (disjoint delta shards, canonical
    sorted merge, sequential firing — still bit-identical); [`Oblivious]
    is the skolem chase baseline ({!run_oblivious}). *)
type engine = [ `Stage | `Seminaive | `Oblivious | `Par ]

val pp_engine : Format.formatter -> engine -> unit

(** Knobs of the [`Par] engine, exposed for the ablation bench and the
    oracle.  [plan_mode] is the atom-ordering strategy of the parallel
    delta family (default {!Hom.Plan.Auto}: cost-ordered, generic join on
    cyclic bodies).  [par_fire] selects the firing path: [`Seq] the
    sequential delta-recheck replay, [`Staged] the partitioned-writer
    staging pipeline unconditionally, [`Auto] (default) staged only with
    more than one worker or under an active failpoint campaign.
    [stealing] (default [true]) picks work-stealing over static
    round-robin scheduling.  Every combination is bit-identical to
    [`Seminaive] — only wall-clock and effort counters move. *)
type par_tuning = {
  plan_mode : Hom.Plan.mode;
  par_fire : [ `Auto | `Seq | `Staged ];
  stealing : bool;
}

val default_tuning : par_tuning

(** A resumable chase snapshot: the structure (a journal-order-preserving
    Marshal clone), the semi-naive watermark, the per-TGD persistent
    dedup keys in canonical sorted order and the stat counters.
    [snap_stage] is the last completed stage; {!resume} continues at
    [snap_stage + 1] with absolute stage numbering.  The record is
    closure-free, so [Resilience.Checkpoint.save]/[load] round-trips it
    exactly. *)
type snapshot = {
  snap_engine : engine;
  snap_stage : int;
  snap_wm : int;
  snap_seen : (int * int array list) list;
  snap_considered : int;
  snap_matches : int;
  snap_applications : int;
  snap_deps : string list;
  snap_structure : Structure.t;
}

(** Restrict a body binding to the frontier: the b̄ of the paper. *)
val frontier_binding : Dep.t -> Hom.binding -> Hom.binding

(** Condition ­: [D ⊨ ∃z̄ Ψ(z̄, b̄)]. *)
val head_satisfied : Structure.t -> Dep.t -> Hom.binding -> bool

(** Fire (T, b̄): add a fresh copy of A[Ψ] glued along b̄. *)
val apply : Structure.t -> Dep.t -> Hom.binding -> unit

(** The active pairs (T, b̄) of the current structure, deduplicated by
    frontier tuple and sorted in the canonical firing order (TGD index,
    then frontier tuple). *)
val active_triggers : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) list

(** [has_active_trigger dep d]: does [dep] have an active trigger?
    Short-circuits on the first one. *)
val has_active_trigger : Dep.t -> Structure.t -> bool

(** One stage; returns the number of firings. *)
val chase_stage : Dep.t list -> Structure.t -> int

(** Run the chase in place for at most [max_stages] stages, until the
    fixpoint, until [stop] holds (checked after each stage), or until the
    [governor] interrupts the run.  Stage numbers stamp provenance into
    the structure.  [engine] selects the trigger-discovery engine
    (default [`Seminaive]); all engines share the canonical per-stage
    firing order, so [`Stage] and [`Seminaive] build identical
    structures, fresh element ids included.  [on_fire] observes every
    firing in order — (stage, TGD, frontier binding) — before its head
    atoms are added; the oracle's differential runner records the firing
    sequence through it.  [jobs] bounds the [`Par] engine's worker count
    (default [Pool.default_jobs ()]) and [tuning] its plan/firing/
    scheduling knobs (default {!default_tuning}; both ignored by other
    engines).

    The [governor] (default [Resilience.Governor.unlimited]) bundles a
    wall-clock deadline, stage fuel, element/fact budgets and a
    cooperative cancellation token.  Budgets and the deadline are checked
    at stage boundaries only, so a governed run cut short is the
    bit-identical prefix of the ungoverned run; cancellation is
    additionally polled inside read-only discovery scans.  The structured
    verdict is [stats.outcome].

    When [on_snapshot] is given, a resumable {!snapshot} is delivered
    every [snapshot_every] (default 1) completed stages and at the final
    stage of a cleanly-ended run (a mid-scan cancellation or fault skips
    the final snapshot: the last boundary snapshot is the resumable one).
    [`Oblivious] does not snapshot. *)
val run :
  ?engine:engine ->
  ?jobs:int ->
  ?tuning:par_tuning ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** Continue a checkpointed run in place on the snapshot's own structure
    (clone the snapshot first if it must stay reusable); the engine is
    the snapshot's.  Stage numbering, the watermark, the persistent dedup
    tables and every counter pick up exactly where the snapshot left
    them: prefix + resume is bit-identical — facts, firing sequence via
    [on_fire], and stats — to one uninterrupted run with the same
    [max_stages] (absolute) and budgets.  Raises [Invalid_argument] if
    the dependency list differs from the snapshot's or the snapshot is
    from an [`Oblivious] run. *)
val resume :
  ?jobs:int ->
  ?tuning:par_tuning ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  Dep.t list ->
  snapshot ->
  stats * Structure.t

(** The stage engine: full re-enumeration each stage ([run ~engine:`Stage]). *)
val run_stage :
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  ?from:snapshot ->
  Dep.t list ->
  Structure.t ->
  stats

(** The semi-naive engine: delta-restricted trigger discovery
    ([run ~engine:`Seminaive], the default). *)
val run_seminaive :
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  ?from:snapshot ->
  Dep.t list ->
  Structure.t ->
  stats

(** The parallel engine ([run ~engine:`Par]): semi-naive trigger
    discovery and firing over a {!Relational.Pool} of domains, driven by
    cost-ordered / generic-join plans over a dense per-stage delta index.

    Discovery: the (TGD x id-chunk) tasks run on a work-stealing pool
    (workers read the structure only); raw matches are merged in
    canonical sort order, deduplicated, head-checked sequentially.
    Firing: workers stage head atoms — frontier arguments resolved,
    fresh/constant placeholders deferred — into private
    {!Relational.Fact_arena.Staging} buffers; the sequential canonical
    merge re-checks each trigger (delta-restricted condition ­) and
    materialises survivors in trigger order, so structures, stats and
    firing sequences are bit-identical to [`Seminaive].  With one worker
    and no failpoints both pipelines collapse to allocation-free
    sequential fast paths.  Hom-level effort counters are approximate
    when [jobs > 1] and legitimately differ from [`Seminaive]'s under the
    cost-ordered plan modes.

    Under the ["par.shard"] (discovery) and ["par.fire"] (staging)
    failpoints a marked task dies before doing any work; the phase is
    retried once and then degrades to its sequential rung.  Staging is
    side-effect-free and every rung feeds the same canonical merge, so a
    faulted run stays bit-identical to an un-faulted [`Seminaive] run. *)
val run_par :
  ?jobs:int ->
  ?tuning:par_tuning ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  ?from:snapshot ->
  Dep.t list ->
  Structure.t ->
  stats

(** The semi-oblivious (skolem) chase: each pair (T, b̄) fires exactly
    once, regardless of condition ­.  Diverges more often than the lazy
    chase; kept as the ablation baseline.  Governed (budgets, deadline,
    cancellation at stage boundaries) but not resumable. *)
val run_oblivious :
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Structure.t -> bool) ->
  ?on_fire:(stage:int -> Dep.t -> Hom.binding -> unit) ->
  Dep.t list ->
  Structure.t ->
  stats

(** Does the structure satisfy all dependencies?  Probes each dependency
    with {!has_active_trigger}, so it stops at the first active trigger
    instead of materialising full trigger lists. *)
val models : Dep.t list -> Structure.t -> bool

(** The first violated dependency, deterministically: the dependencies
    are probed in list order, and the witness reported for the first
    violated one is its *least* active frontier binding in the canonical
    trigger order (ascending variable name, then element).  Satisfied
    prefixes cost one short-circuited probe each. *)
val find_violation : Dep.t list -> Structure.t -> (Dep.t * Hom.binding) option

(** {1 Incremental maintenance}

    Maintain a chased structure under base-fact edits — insertions AND
    retractions — without re-running the chase from scratch.

    The lazy chase is non-monotone (condition ­ withholds firings), so
    the maintained structure is not promised to be bit-identical to a
    from-scratch chase of the edited base.  The contract is semantic:
    after every [apply_edit] run to fixpoint the structure is a
    {e universal model} of the edited base under the dependencies —
    every live fact is grounded in a derivation from live base facts
    (counting/DRed support tracking guarantees it), and no dependency
    has an active trigger.  Universal models are hom-equivalent, so all
    CQ answers over constants — the view level — are bit-identical to
    the from-scratch chase. *)
module Maint : sig
  type t

  (** One edit operation on the base.  In a script the last op on a fact
      wins; retracting an absent fact and inserting a present one are
      no-ops (the latter still marks the fact as base). *)
  type op = Insert of Fact.t | Retract of Fact.t

  type edit_stats = {
    e_retracted : int;  (** base retractions processed *)
    e_inserted : int;  (** base facts newly added *)
    e_killed : int;  (** facts over-deleted by the counting cascade *)
    e_refired : int;  (** re-exam re-derivations *)
    e_rewithheld : int;  (** re-exam keys found head-witnessed again *)
    e_run : stats;  (** the semi-naive continuation run *)
  }

  (** [create deps d] chases [d] in place to a fixpoint under maintenance
      tracking; every fact initially in [d] is a base fact.  [engine]
      restricts to the delta engines (default [`Seminaive]); [jobs]
      bounds [`Par] workers.  A [governor] may cut the initial run — it
      stays resumable with {!continue_}. *)
  val create :
    ?engine:[ `Seminaive | `Par ] ->
    ?jobs:int ->
    ?governor:Resilience.Governor.t ->
    ?max_stages:int ->
    Dep.t list ->
    Structure.t ->
    t * stats

  (** The maintained structure (live view; do not mutate directly). *)
  val structure : t -> Structure.t

  (** The current base facts. *)
  val base_facts : t -> Fact.t list

  (** Did the last run end short of the fixpoint (governor cut)?  Apply
      {!continue_} until this clears before the next {!apply_edit}. *)
  val pending : t -> bool

  (** Resume a continuation cut by the governor.  [max_stages] is
      relative to the stages already run. *)
  val continue_ :
    ?governor:Resilience.Governor.t -> ?max_stages:int -> t -> stats

  (** [apply_edit t ops] applies the edit script: counting cascade for
      the retractions (over-deleting facts whose support count reaches
      zero), DRed-style re-examination of every killed derivation in
      canonical (TGD, frontier key) order — re-deriving through
      existential nulls by re-adding the recorded head instances, so
      surviving nulls keep their identity — then one semi-naive
      continuation back to the fixpoint.  The continuation honours the
      [governor]: a cut edit leaves {!pending} set and is completed by
      {!continue_} (preemptible maintenance).
      @raise Invalid_argument if a continuation is pending. *)
  val apply_edit :
    ?governor:Resilience.Governor.t ->
    ?max_stages:int ->
    t ->
    op list ->
    edit_stats

  (** Internal-consistency audit (for tests): every live fact is base or
      supported by an alive firing; every alive record's recorded
      witness/product facts are live.  Returns violations, empty when
      consistent. *)
  val check : t -> string list
end

(** Alias for {!Maint.apply_edit}. *)
val apply_edit :
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  Maint.t ->
  Maint.op list ->
  Maint.edit_stats
