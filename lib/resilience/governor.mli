(** The resource governor: one record bundling wall-clock deadline, stage
    fuel, element/fact/step budgets and a cooperative cancellation token,
    threaded through the chase engines ([Tgd.Chase], [Greengraph.Rule]),
    the hom evaluator and the rainworm creeping semantics.  The engines
    report a structured {!outcome} instead of the old [fixpoint : bool].

    Budgets and the deadline are polled at stage boundaries only, so a
    governed run cut at stage [i] is the bit-identical prefix of the
    ungoverned run.  The cancellation token is additionally polled inside
    the read-only discovery scans, where aborting cannot tear the
    structure. *)

(** Cooperative cancellation tokens. *)
module Cancel : sig
  type t

  val create : unit -> t
  val trip : t -> unit
  val reset : t -> unit
  val tripped : t -> bool

  val never : t
  (** The inert token shared by ungoverned runs; never tripped. *)

  exception Cancelled
  (** Raised by {!poll} out of a read-only scan when the armed token has
      tripped; caught by the engines at the stage boundary. *)

  val with_polling : t -> (unit -> 'a) -> 'a
  (** Arm [t] for hot-path polling within the callback (saving and
      restoring any previously armed token).  The armed state is
      domain-local: concurrent scans on other domains neither observe
      [t] nor disturb this domain's arming. *)

  val poll : unit -> unit
  (** The hot-path poll: one global load when no domain is armed
      anywhere, raising {!Cancelled} when the token armed by this
      domain's enclosing {!with_polling} has tripped. *)
end

type budget_kind =
  | Stages  (** stage fuel exhausted ([max_stages]) *)
  | Elems   (** element budget exceeded *)
  | Facts   (** fact budget exceeded *)
  | Steps   (** step/cycle fuel exhausted (rainworm creeping) *)
  | Stop    (** a caller-supplied [stop] predicate held *)

type outcome =
  | Fixpoint            (** no trigger was active at the last stage *)
  | Budget of budget_kind  (** a deterministic budget cut the run *)
  | Deadline            (** the wall-clock deadline passed *)
  | Cancelled           (** the cancellation token tripped *)
  | Faulted of string   (** an injected (or real) fault aborted the run;
                            the payload names the failpoint site *)

type t = {
  deadline : float option;
      (** absolute deadline on the [Obs.Clock.now_s] timeline *)
  max_stages : int;
  max_elems : int;
  max_facts : int;
  max_steps : int;
  cancel : Cancel.t;
}

val unlimited : t
(** No deadline, no budgets, the {!Cancel.never} token.  The default of
    every run function; physically compared so ungoverned runs skip all
    governor work. *)

val make :
  ?deadline_in:float ->
  ?deadline:float ->
  ?max_stages:int ->
  ?max_elems:int ->
  ?max_facts:int ->
  ?max_steps:int ->
  ?cancel:Cancel.t ->
  unit ->
  t
(** [deadline_in dt] sets the absolute deadline [dt] seconds from now;
    [deadline] (absolute) wins when both are given. *)

val is_unlimited : t -> bool
val cancelled : t -> bool
val deadline_passed : t -> bool

val interrupted : t -> outcome option
(** The stage-boundary poll: [Some Cancelled] if the token tripped, else
    [Some Deadline] if the deadline passed, else [None]. *)

val has_size_budget : t -> bool
(** Is either size budget finite?  Engines whose element/fact counts are
    O(n) to compute (the graph chase) skip counting when this is false. *)

val over_budget : t -> elems:int -> facts:int -> outcome option
(** Element/fact budget check, also polled at stage boundaries. *)

val with_scope : t -> (unit -> 'a) -> 'a
(** Arm hot-path cancellation polling for the callback iff the governor
    carries a real (non-{!Cancel.never}) token. *)

val budget_kind_to_string : budget_kind -> string
val pp_budget_kind : Format.formatter -> budget_kind -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val exit_code : outcome -> int
(** The documented CLI taxonomy: 0 fixpoint, 3 budget/deadline, 4
    cancelled, 1 faulted. *)
