(* Atomic checkpoint files.

   Format: one header line

     REDSPIDER-CKPT-1 <kind> <md5-hex-of-payload> <payload-length>\n

   followed by the Marshal payload.  Writes go to [path ^ ".tmp"] and
   are published with [Sys.rename], which is atomic on POSIX: a reader
   of [path] sees either the previous checkpoint or the new one, never
   a torn file.  The digest additionally catches a torn or corrupted
   *published* file (e.g. a copy truncated out-of-band), so [load]
   always either returns the exact snapshot or a clean error.

   The payload is produced by [Marshal] without closures: every snapshot
   type in this repo (Structure.t, Graph.t, the engine snapshot records)
   is closure-free data, and the round-trip preserves mutation order —
   unlike [Structure.copy], which re-adds facts in hash order and would
   destroy the delta journal a resumed semi-naive run depends on. *)

let magic = "REDSPIDER-CKPT-1"

(* Marshal round-trip deep clone: the only journal-order-preserving way
   to copy a live structure for a snapshot. *)
let clone v = Marshal.from_string (Marshal.to_string v []) 0

let save ~kind path v =
  if String.contains kind ' ' then invalid_arg "Checkpoint.save: kind has a space";
  let payload = Marshal.to_string v [] in
  let digest = Digest.to_hex (Digest.string payload) in
  let tmp = path ^ ".tmp" in
  let write () =
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%s %s %s %d\n" magic kind digest
          (String.length payload);
        (* the crash-mid-write failpoint: half the payload lands in the
           tmp file, the rename below never happens *)
        if Failpoint.fire "checkpoint.write" then begin
          output_substring oc payload 0 (String.length payload / 2);
          flush oc;
          raise (Failpoint.Injected "checkpoint.write")
        end;
        output_string oc payload;
        flush oc)
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  try
    write ();
    Sys.rename tmp path;
    Ok ()
  with
  | Failpoint.Injected site ->
      cleanup ();
      Error
        (Printf.sprintf
           "fault injected at %s: checkpoint not published (previous \
            checkpoint, if any, is intact)"
           site)
  | Sys_error m ->
      cleanup ();
      Error m

let load ~kind path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let header = input_line ic in
        match String.split_on_char ' ' header with
        | [ m; k; digest; len ] when m = magic ->
            if k <> kind then
              Error
                (Printf.sprintf "checkpoint kind mismatch: wanted %s, file has %s"
                   kind k)
            else
              let n = int_of_string len in
              let payload = really_input_string ic n in
              if Digest.to_hex (Digest.string payload) <> digest then
                Error "checkpoint digest mismatch (torn or corrupt file)"
              else Ok (Marshal.from_string payload 0)
        | _ -> Error "bad checkpoint header")
  with
  | End_of_file -> Error "truncated checkpoint"
  | Failure _ -> Error "bad checkpoint header"
  | Sys_error m -> Error m
