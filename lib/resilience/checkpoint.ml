(* Atomic, durable checkpoint files.

   Format: one header line

     REDSPIDER-CKPT-1 <kind> <md5-hex-of-payload> <payload-length>\n

   followed by the Marshal payload.  Writes go to a *unique* temp file
   next to [path] and are published with [Sys.rename], which is atomic
   on POSIX: a reader of [path] sees either the previous checkpoint or
   the new one, never a torn file.

   Durability: the temp fd is fsynced before the rename and the
   containing directory is fsynced after it.  Without the first fsync a
   crash shortly after "publish" can leave [path] pointing at pages the
   kernel never flushed — an empty or torn file whose digest check then
   rejects it, silently losing the *previous* good checkpoint that the
   rename replaced.  Without the second, the rename itself may not have
   reached disk.  The digest additionally catches out-of-band corruption
   of a published file, so [load] always either returns the exact
   snapshot or a clean error.

   Temp names embed the pid and a process-wide counter
   ([path ^ ".tmp.<pid>.<n>"]): two concurrent writers — two daemon
   workers suspending jobs to the same store, or a daemon and a CLI run
   sharing a path — each write their own temp file and publish with
   their own rename, so the last rename wins with a *consistent*
   payload; a fixed suffix would let them interleave writes into one
   file and publish a mismatched header/payload pair.

   The payload is produced by [Marshal] without closures: every snapshot
   type in this repo (Structure.t, Graph.t, the engine snapshot records)
   is closure-free data, and the round-trip preserves mutation order —
   unlike [Structure.copy], which re-adds facts in hash order and would
   destroy the delta journal a resumed semi-naive run depends on. *)

let magic = "REDSPIDER-CKPT-1"

(* Marshal round-trip deep clone: the only journal-order-preserving way
   to copy a live structure for a snapshot. *)
let clone v = Marshal.from_string (Marshal.to_string v []) 0

(* Process-wide temp-name counter; atomic because daemon pool workers
   checkpoint concurrently. *)
let tmp_counter = Atomic.make 0

let fresh_tmp path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

(* Directory fsync after rename, so the publish itself is on disk.
   Best-effort: some filesystems refuse to fsync a directory fd, and a
   failure here cannot un-publish the checkpoint. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let error_message = function
  | Sys_error m -> m
  | Unix.Unix_error (e, fn, arg) ->
      Printf.sprintf "%s: %s (%s)" fn (Unix.error_message e) arg
  | e -> Printexc.to_string e

(* Write [emit]'s output to a unique temp file, fsync it, publish it at
   [path] with an atomic rename, and fsync the directory.  The temp file
   is removed on *every* failure — including exceptions other than
   [Sys_error]/[Unix_error], which are re-raised after cleanup rather
   than silently leaking the temp. *)
let publish_atomic path emit =
  let tmp = fresh_tmp path in
  let cleanup () =
    try Sys.remove tmp with Sys_error _ | Unix.Unix_error _ -> ()
  in
  let write () =
    let fd =
      Unix.openfile tmp
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
        0o644
    in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        emit oc;
        flush oc;
        Unix.fsync fd)
  in
  match
    write ();
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception Failpoint.Injected site ->
      cleanup ();
      Error
        (Printf.sprintf
           "fault injected at %s: checkpoint not published (previous \
            checkpoint, if any, is intact)"
           site)
  | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
      cleanup ();
      Error (error_message e)
  | exception e ->
      cleanup ();
      raise e

let write_atomic path content =
  publish_atomic path (fun oc -> output_string oc content)

let save ~kind path v =
  if String.contains kind ' ' then invalid_arg "Checkpoint.save: kind has a space";
  let payload = Marshal.to_string v [] in
  let digest = Digest.to_hex (Digest.string payload) in
  publish_atomic path (fun oc ->
      Printf.fprintf oc "%s %s %s %d\n" magic kind digest
        (String.length payload);
      (* the crash-mid-write failpoint: half the payload lands in the
         temp file, the rename never happens *)
      if Failpoint.fire "checkpoint.write" then begin
        output_substring oc payload 0 (String.length payload / 2);
        flush oc;
        raise (Failpoint.Injected "checkpoint.write")
      end;
      output_string oc payload)

let load ~kind path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let header = input_line ic in
        match String.split_on_char ' ' header with
        | [ m; k; digest; len ] when m = magic ->
            if k <> kind then
              Error
                (Printf.sprintf "checkpoint kind mismatch: wanted %s, file has %s"
                   kind k)
            else (
              (* The header length is untrusted input (the daemon loads
                 checkpoints it did not write): a negative value would
                 crash [really_input_string] and an absurdly large one
                 would try to allocate it.  Anything outside the bytes
                 actually present is the same clean error a torn file
                 gets. *)
              match int_of_string_opt len with
              | None -> Error "bad checkpoint header"
              | Some n ->
                  let remaining = in_channel_length ic - pos_in ic in
                  if n < 0 || n > remaining then
                    Error
                      (Printf.sprintf
                         "bad checkpoint payload length %d (file has %d \
                          bytes after the header)"
                         n remaining)
                  else
                    let payload = really_input_string ic n in
                    if Digest.to_hex (Digest.string payload) <> digest then
                      Error "checkpoint digest mismatch (torn or corrupt file)"
                    else Ok (Marshal.from_string payload 0))
        | _ -> Error "bad checkpoint header")
  with
  | End_of_file -> Error "truncated checkpoint"
  | Failure _ -> Error "bad checkpoint header"
  | Sys_error m -> Error m
