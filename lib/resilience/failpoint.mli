(** Seeded failpoint harness.  A spec such as
    ["par.shard=0.25,checkpoint.write=0.1,arena.grow"] arms the named
    sites with the given firing probabilities (a bare name means 1.0).
    Decisions come from a private splitmix64 stream, so a (seed, spec)
    pair replays the exact fault schedule.

    Sites currently wired in:
    - ["par.shard"]: a par discovery worker dies before scanning its
      shard ([Tgd.Chase] and [Greengraph.Rule] retry once, then degrade
      to sequential semi-naive discovery for that scan);
    - ["arena.grow"]: the fact arena's growth path fails, surfacing as a
      [Faulted] outcome;
    - ["checkpoint.write"]: a checkpoint write dies mid-payload before
      the atomic rename, leaving the previous checkpoint intact;
    - ["shard.case"]: an oracle shard worker dies at the start of a
      case ([Oracle.Shard.run] propagates it; the campaign supervisor
      reclaims the lease and retries the shard);
    - ["campaign.vanish"]: a campaign worker finishes a shard but its
      completion is silently dropped — only lease expiry recovers it;
    - ["campaign.ledger"]: a campaign ledger append is torn mid-record
      (recovery skips the bad trailing line; the next successful append
      republishes it);
    - ["campaign.sock"]: the daemon-mode campaign poll loop loses its
      socket mid-wait and must reconnect;
    - ["client.connect"]: a [Serve.Client] connection attempt fails,
      exercising the jittered connect/request retry path. *)

exception Injected of string
(** Raised at a faulting site; the payload is the site name. *)

val configure : ?seed:int -> string -> (unit, string) result
(** Arm the sites of [spec]; an empty spec disarms everything. *)

val configure_exn : ?seed:int -> string -> unit
(** [configure], raising [Invalid_argument] on a malformed spec. *)

val clear : unit -> unit
(** Disarm all sites (and forget their counters). *)

val active : unit -> bool
(** Any site armed?  The disabled fast path is this single ref read. *)

val fire : string -> bool
(** Should the named site fault now?  Counts the probe either way;
    unarmed/unknown sites never fault and never consume randomness. *)

val hit : string -> unit
(** [fire] that raises {!Injected} instead of returning [true]. *)

type summary = { name : string; prob : float; hits : int; injected : int }

val summary : unit -> summary list
(** Per-site counters, sorted by name; empty when disarmed. *)

val injected_total : unit -> int

val rng_state : unit -> int64 option
(** The decision stream's position, for checkpointing mid-campaign. *)

val set_rng_state : int64 -> unit
val pp_summary : Format.formatter -> summary -> unit
