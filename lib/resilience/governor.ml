(* The resource governor: one record bundling every way a chase run is
   allowed to end early — wall-clock deadline, stage fuel, element/fact
   budgets and a cooperative cancellation token — plus the structured
   outcome the engines report instead of the old [fixpoint : bool].

   Budgets and the deadline are polled at stage boundaries only, so a
   governed run cut at stage i is the bit-identical prefix of the
   ungoverned run: no trigger order, fresh id or counter ever depends on
   the governor.  The cancellation token is additionally polled inside
   the read-only discovery scans (see {!Cancel.poll}), where aborting is
   safe because the structure is not being mutated. *)

module Cancel = struct
  type t = { mutable tripped : bool }

  let create () = { tripped = false }
  let trip t = t.tripped <- true
  let reset t = t.tripped <- false
  let tripped t = t.tripped

  (* The inert token: shared by every ungoverned run, never tripped. *)
  let never = { tripped = false }

  exception Cancelled

  (* Hot-path polling: [with_polling] arms the token for the dynamic
     extent of a read-only scan; {!poll} raises [Cancelled] out of the
     scan, which the engine catches at the stage boundary.

     The armed state is DOMAIN-LOCAL.  Slices of different jobs run
     concurrently on separate worker domains (and a daemon can coexist
     with in-process governed runs); with a shared global, interleaved
     save/restores scramble each other, and a later scan can observe a
     *stale* token — notably an old daemon's tripped drain token, which
     then cancels every slice of a fresh daemon forever.  Domain-local
     armed state makes with_polling's save/restore properly nested per
     domain, so a scan only ever polls the token its own dynamic extent
     armed.

     [poll] sits on the innermost backtracking path of the hom join
     evaluator — millions of calls per scan — and [Domain.DLS.get] is
     ~9x the cost of a plain load, so the disarmed case (every
     ungoverned run: the CLI one-shots, the whole chase bench suite)
     must not pay it.  A process-global count of live [with_polling]
     extents guards the slow path: when it is zero — no domain armed
     anywhere — poll is a single [Atomic.get], matching the old
     one-ref-read discipline.  When any domain is armed, polls
     everywhere fall through to the domain-local check; only the
     domains actually inside a [with_polling] extent can raise. *)
  type armed = { mutable on : bool; mutable tok : t }

  let armed_key = Domain.DLS.new_key (fun () -> { on = false; tok = never })
  let armed_extents = Atomic.make 0

  let with_polling t f =
    let a = Domain.DLS.get armed_key in
    let saved_on = a.on and saved_tok = a.tok in
    a.on <- true;
    a.tok <- t;
    Atomic.incr armed_extents;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr armed_extents;
        a.on <- saved_on;
        a.tok <- saved_tok)
      f

  let poll () =
    if Atomic.get armed_extents > 0 then begin
      let a = Domain.DLS.get armed_key in
      if a.on && a.tok.tripped then raise Cancelled
    end
end

type budget_kind = Stages | Elems | Facts | Steps | Stop

type outcome =
  | Fixpoint
  | Budget of budget_kind
  | Deadline
  | Cancelled
  | Faulted of string

type t = {
  deadline : float option; (* absolute, on the Obs.Clock.now_s timeline *)
  max_stages : int;
  max_elems : int;
  max_facts : int;
  max_steps : int;
  cancel : Cancel.t;
}

let unlimited =
  {
    deadline = None;
    max_stages = max_int;
    max_elems = max_int;
    max_facts = max_int;
    max_steps = max_int;
    cancel = Cancel.never;
  }

let make ?deadline_in ?deadline ?(max_stages = max_int) ?(max_elems = max_int)
    ?(max_facts = max_int) ?(max_steps = max_int) ?(cancel = Cancel.never) () =
  let deadline =
    match (deadline, deadline_in) with
    | (Some _ as d), _ -> d
    | None, Some dt -> Some (Obs.Clock.now_s () +. dt)
    | None, None -> None
  in
  { deadline; max_stages; max_elems; max_facts; max_steps; cancel }

let is_unlimited g = g == unlimited

let cancelled g = Cancel.tripped g.cancel

let deadline_passed g =
  match g.deadline with None -> false | Some d -> Obs.Clock.now_s () > d

(* The stage-boundary poll: cancellation wins over the deadline so a
   Ctrl-C is always reported as such even on an expired run. *)
let interrupted g =
  if cancelled g then Some Cancelled
  else if deadline_passed g then Some Deadline
  else None

let has_size_budget g = g.max_elems < max_int || g.max_facts < max_int

let over_budget g ~elems ~facts =
  if elems > g.max_elems then Some (Budget Elems)
  else if facts > g.max_facts then Some (Budget Facts)
  else None

(* Arm hot-path cancellation polling only for a real token: ungoverned
   runs keep the disarmed single-ref-read fast path. *)
let with_scope g f =
  if g.cancel == Cancel.never then f () else Cancel.with_polling g.cancel f

let budget_kind_to_string = function
  | Stages -> "stages"
  | Elems -> "elems"
  | Facts -> "facts"
  | Steps -> "steps"
  | Stop -> "stop"

let pp_budget_kind ppf k = Fmt.string ppf (budget_kind_to_string k)

let pp_outcome ppf = function
  | Fixpoint -> Fmt.string ppf "fixpoint"
  | Budget k -> Fmt.pf ppf "budget:%a" pp_budget_kind k
  | Deadline -> Fmt.string ppf "deadline"
  | Cancelled -> Fmt.string ppf "cancelled"
  | Faulted site -> Fmt.pf ppf "faulted:%s" site

(* The CLI exit-code taxonomy (documented in bin/redspider.ml): 0
   success/fixpoint, 1 violation or unrecovered fault, 2 usage, 3
   budget/deadline cut, 4 cancelled. *)
let exit_code = function
  | Fixpoint -> 0
  | Budget _ | Deadline -> 3
  | Cancelled -> 4
  | Faulted _ -> 1
