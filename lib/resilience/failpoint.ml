(* Seeded failpoint harness.  A spec like

     "par.shard=0.25,par.fire=0.25,checkpoint.write=0.1,arena.grow"

   arms the named sites with the given firing probabilities (a bare name
   means probability 1).  Sites in the tree today: "par.shard" (a
   parallel trigger-discovery task), "par.fire" (a staged parallel
   firing pass), "arena.grow" (arena growth), "checkpoint.write" (the
   checkpoint writer, killed mid-write).  Decisions are drawn from a private splitmix64
   stream, so a (seed, spec) pair replays the exact same fault schedule —
   the property the differential fault campaign (Oracle.Fault) and the
   @resilience-smoke alias rely on.

   The disabled fast path is a single ref read ([hit] on [None] state),
   matching the [Obs.metrics_on] overhead discipline.  Decisions are
   always drawn on the domain that calls [fire]; the par engines draw
   their per-shard decisions *before* spawning workers so the stream is
   never raced from several domains. *)

exception Injected of string

(* splitmix64, same constants as Oracle.Gen (resilience sits below
   oracle in the library stack, so the few lines are duplicated rather
   than depended upon). *)
let sm_gamma = 0x9E3779B97F4A7C15L
let sm_mul1 = 0xBF58476D1CE4E5B9L
let sm_mul2 = 0x94D049BB133111EBL

let sm_next state =
  state := Int64.add !state sm_gamma;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) sm_mul1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) sm_mul2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A uniform draw in [0, 1): the top 53 bits over 2^53. *)
let sm_float state =
  let bits = Int64.shift_right_logical (sm_next state) 11 in
  Int64.to_float bits /. 9007199254740992.

type site = { prob : float; mutable hits : int; mutable injected : int }

type cfg = {
  rng : int64 ref;
  sites : (string, site) Hashtbl.t;
  spec : string;
  seed : int;
}

let state : cfg option ref = ref None

let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.map
    (fun entry ->
      match String.index_opt entry '=' with
      | None -> Ok (entry, 1.0)
      | Some i -> (
          let name = String.trim (String.sub entry 0 i) in
          let p = String.trim (String.sub entry (i + 1) (String.length entry - i - 1)) in
          match float_of_string_opt p with
          | Some prob when prob >= 0.0 && prob <= 1.0 && name <> "" ->
              Ok (name, prob)
          | _ -> Error entry))
    entries
  |> List.fold_left
       (fun acc r ->
         match (acc, r) with
         | Error e, _ -> Error e
         | Ok _, Error entry ->
             Error (Printf.sprintf "bad failpoint entry %S (want name=prob, 0<=prob<=1)" entry)
         | Ok l, Ok kv -> Ok (kv :: l))
       (Ok [])
  |> Result.map List.rev

let configure ?(seed = 0) spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok [] ->
      state := None;
      Ok ()
  | Ok entries ->
      let sites = Hashtbl.create 8 in
      List.iter
        (fun (name, prob) ->
          Hashtbl.replace sites name { prob; hits = 0; injected = 0 })
        entries;
      state := Some { rng = ref (Int64.of_int seed); sites; spec; seed };
      Ok ()

let configure_exn ?seed spec =
  match configure ?seed spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Failpoint.configure: " ^ m)

let clear () = state := None
let active () = !state <> None

(* Should the site fault right now?  Counts the hit either way; draws
   from the stream only for armed sites so unarmed probes don't perturb
   the schedule of armed ones. *)
let fire name =
  match !state with
  | None -> false
  | Some cfg -> (
      match Hashtbl.find_opt cfg.sites name with
      | None -> false
      | Some site ->
          site.hits <- site.hits + 1;
          let inject =
            site.prob >= 1.0 || (site.prob > 0.0 && sm_float cfg.rng < site.prob)
          in
          if inject then site.injected <- site.injected + 1;
          inject)

(* [fire] that raises instead of returning true. *)
let hit name = if fire name then raise (Injected name)

type summary = { name : string; prob : float; hits : int; injected : int }

let summary () =
  match !state with
  | None -> []
  | Some cfg ->
      Hashtbl.fold
        (fun name (s : site) acc ->
          { name; prob = s.prob; hits = s.hits; injected = s.injected } :: acc)
        cfg.sites []
      |> List.sort (fun a b -> String.compare a.name b.name)

let injected_total () =
  List.fold_left (fun n s -> n + s.injected) 0 (summary ())

(* The RNG position, for checkpointing a fault schedule mid-run. *)
let rng_state () = Option.map (fun cfg -> !(cfg.rng)) !state

let set_rng_state v =
  match !state with None -> () | Some cfg -> cfg.rng := v

let pp_summary ppf s =
  Fmt.pf ppf "%s p=%g hits=%d injected=%d" s.name s.prob s.hits s.injected
