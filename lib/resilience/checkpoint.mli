(** Atomic checkpoint files: a one-line header (magic, kind, md5 digest,
    payload length) followed by a closure-free [Marshal] payload, written
    to [path ^ ".tmp"] and published with an atomic [Sys.rename].  A
    reader sees either the previous checkpoint or the new one, never a
    torn file; the digest catches out-of-band corruption of a published
    file.

    The ["checkpoint.write"] failpoint makes {!save} die mid-payload
    before the rename: the tmp file is torn but the published path is
    untouched. *)

val clone : 'a -> 'a
(** Marshal round-trip deep clone.  Preserves mutation order — the only
    safe way to copy a live [Structure.t]/[Graph.t] whose delta journal a
    resumed run depends on ([Structure.copy] re-adds facts in hash
    order). *)

val save : kind:string -> string -> 'a -> (unit, string) result
(** [save ~kind path v] atomically publishes [v] at [path].  [kind] is a
    space-free tag checked by {!load} (e.g. ["tgd-chase"]). *)

val load : kind:string -> string -> ('a, string) result
(** Read back a checkpoint, verifying magic, kind and digest.  The
    caller asserts the payload type through [kind]. *)
