(** Atomic, durable checkpoint files: a one-line header (magic, kind,
    md5 digest, payload length) followed by a closure-free [Marshal]
    payload, written to a unique temp file ([path ^ ".tmp.<pid>.<n>"],
    safe for concurrent writers to one path), fsynced, published with an
    atomic [Sys.rename], then made durable with a directory fsync.  A
    reader sees either the previous checkpoint or the new one, never a
    torn file — even across a crash right after the publish; the digest
    catches out-of-band corruption of a published file, and the header
    length is validated against the file size before any allocation, so
    {!load} on an adversarial or damaged file is always a clean
    [Error].

    The ["checkpoint.write"] failpoint makes {!save} die mid-payload
    before the rename: the temp file is torn, removed, and the published
    path is untouched. *)

val clone : 'a -> 'a
(** Marshal round-trip deep clone.  Preserves mutation order — the only
    safe way to copy a live [Structure.t]/[Graph.t] whose delta journal a
    resumed run depends on ([Structure.copy] re-adds facts in hash
    order). *)

val save : kind:string -> string -> 'a -> (unit, string) result
(** [save ~kind path v] atomically publishes [v] at [path].  [kind] is a
    space-free tag checked by {!load} (e.g. ["tgd-chase"]). *)

val load : kind:string -> string -> ('a, string) result
(** Read back a checkpoint, verifying magic, kind, payload length and
    digest.  The caller asserts the payload type through [kind]. *)

val write_atomic : string -> string -> (unit, string) result
(** [write_atomic path content] publishes [content] at [path] with the
    same unique-temp + fsync + rename + directory-fsync discipline as
    {!save}, without the checkpoint header.  Used for small durable
    text files (the daemon's job manifests). *)
