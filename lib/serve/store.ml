(* The persistent job store: one directory, two files per job, plus the
   persistent segment of the result cache.

     <id>.job    the JSON manifest (spec + lifecycle state + counters)
     <id>.ckpt   the engine snapshot of a suspended chase job
                 (REDSPIDER-CKPT-1, kind "tgd-chase")
     <key>.res   a cached result, named by its 32-hex-digit cache key
                 (pure keys only — instance reads never persist)

   Both are published with [Checkpoint]'s unique-temp + fsync + rename
   discipline, so a crash at any point leaves every job either at its
   previous durable state or its new one — never torn.  Daemon restart
   is a directory scan: terminal jobs are history, suspended/queued jobs
   re-enter the run queue, and a job frozen as "running" (the daemon
   died inside a slice) falls back to its last checkpoint, or to a fresh
   start if it never completed a quantum. *)

type t = { dir : string }

let manifest_suffix = ".job"

let open_ dir =
  let rec mkdirs d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdirs dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Store.open_: %s is not a directory" dir);
  { dir }

let manifest_path t id = Filename.concat t.dir (id ^ manifest_suffix)
let ckpt_path t id = Filename.concat t.dir (id ^ ".ckpt")

let save_manifest t (job : Job.t) =
  Resilience.Checkpoint.write_atomic (manifest_path t job.Job.id)
    (Json.to_string (Job.manifest_json job) ^ "\n")

let has_checkpoint t id = Sys.file_exists (ckpt_path t id)

let remove_checkpoint t id =
  try Sys.remove (ckpt_path t id) with Sys_error _ -> ()

let ckpt_suffix = ".ckpt"

(* Delete every [<id>.ckpt] whose owner [keep id] disavows — the crash-
   recovery sweep for checkpoints orphaned by a job that reached a
   terminal state (or lost its manifest) before the file was removed.
   Returns the ids swept. *)
let sweep_checkpoints t ~keep =
  let entries = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ckpt_suffix then begin
        let id = Filename.chop_suffix name ckpt_suffix in
        if keep id then acc
        else begin
          (try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ());
          id :: acc
        end
      end
      else acc)
    [] entries

(* Every parseable manifest, sorted by submission sequence; unreadable
   or corrupt manifests are returned as (file, error) pairs rather than
   aborting recovery — one damaged job must not take the store down. *)
let load_all t =
  let entries = try Sys.readdir t.dir with Sys_error _ -> [||] in
  let jobs = ref [] and bad = ref [] in
  Array.iter
    (fun name ->
      if Filename.check_suffix name manifest_suffix then begin
        let path = Filename.concat t.dir name in
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error m -> bad := (name, m) :: !bad
        | raw -> (
            match Result.bind (Json.parse raw) Job.manifest_of_json with
            | Ok job -> jobs := job :: !jobs
            | Error m -> bad := (name, m) :: !bad)
      end)
    entries;
  ( List.sort (fun (a : Job.t) b -> compare a.Job.seq b.Job.seq) !jobs,
    List.rev !bad )

(* The next submission sequence number after a restart. *)
let next_seq jobs =
  1 + List.fold_left (fun m (j : Job.t) -> max m j.Job.seq) 0 jobs

(* --- persistent result-cache segment ----------------------------------- *)

let res_suffix = ".res"
let res_path t key = Filename.concat t.dir (key ^ res_suffix)

let save_result t ~key json =
  Resilience.Checkpoint.write_atomic (res_path t key)
    (Json.to_string json ^ "\n")

let remove_result t key =
  try Sys.remove (res_path t key) with Sys_error _ -> ()

(* Delete every [<key>.res] the result cache disavows — the mirror of
   [sweep_checkpoints] for the persistent cache segment.  Entries are
   orphaned when the cache restarts disabled (capacity 0 or persistence
   off), shrinks below a previously persisted population, or when a key
   schema change strands old digests; without the sweep they accumulate
   forever.  Returns the keys swept. *)
let sweep_results t ~keep =
  let entries = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name res_suffix then begin
        let key = Filename.chop_suffix name res_suffix in
        if keep key then acc
        else begin
          (try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ());
          key :: acc
        end
      end
      else acc)
    [] entries

(* Delete temp files left by writers the daemon's death interrupted.
   [Checkpoint.fresh_tmp] names them [<target>.tmp.<pid>.<n>]; at
   recovery no writer of this store is alive (one daemon per store),
   so anything tmp-infixed is garbage.  Returns the names swept. *)
let sweep_temps t =
  let entries = try Sys.readdir t.dir with Sys_error _ -> [||] in
  let tmp_infix name =
    let rec find i =
      i + 5 <= String.length name
      && (String.sub name i 5 = ".tmp." || find (i + 1))
    in
    find 0
  in
  Array.fold_left
    (fun acc name ->
      if tmp_infix name then begin
        (try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ());
        name :: acc
      end
      else acc)
    [] entries

(* Every parseable [<key>.res] entry; a corrupt entry is deleted rather
   than reported — the cache is a performance artifact, losing one entry
   re-runs one job. *)
let load_results t =
  let entries = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name res_suffix then begin
        let path = Filename.concat t.dir name in
        let key = Filename.chop_suffix name res_suffix in
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error _ -> acc
        | raw -> (
            match Json.parse raw with
            | Ok json -> (key, json) :: acc
            | Error _ ->
                (try Sys.remove path with Sys_error _ -> ());
                acc)
      end
      else acc)
    [] entries
