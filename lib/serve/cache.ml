(* The daemon's digest-keyed result cache.

   One entry per cache key (see [Job.cache_class]): the completed
   result plus the counters a hit replays onto the served job, so a
   cached answer is indistinguishable from a fresh run — same outcome,
   same digest, same stage/application/trigger numbers — except that it
   costs zero slices.

   Two layers:

     - the entry table, LRU-evicted at [capacity] (an O(n) min-tick
       scan; capacities are hundreds, not millions);
     - the in-flight table, which coalesces duplicates: the first job to
       claim a key becomes the *primary* and actually runs; later
       arrivals park as *followers* and are completed by replication
       when the primary finishes.  A primary that ends without a result
       (faulted, cancelled) is abandoned and the server promotes a
       follower in its place.

   Pure entries may also be persisted as [<key>.res] files in the job
   store, surviving restarts.  Instance-read entries (mutate jobs with
   an empty edit script against a daemon-held instance) are in-memory
   only: their keys embed a per-instance version that restarts reset,
   and [drop_instance] sweeps them the moment an edit commits, so an
   edited instance can never serve a stale digest.

   Every operation runs on the daemon's select-loop thread; no locking
   needed. *)

type entry = {
  e_key : string;
  e_result : Job.result_;
  e_stages : int;        (* stages_done of the producing run *)
  e_applications : int;
  e_considered : int;
  e_instance : string option;  (* Some name for instance-read entries *)
  e_persisted : bool;          (* has a [.res] file to clean up *)
  mutable e_tick : int;        (* LRU clock *)
}

type flight = {
  f_primary : string;              (* job id actually running *)
  mutable f_followers : string list;  (* parked job ids, arrival order *)
}

type t = {
  capacity : int;                  (* 0 disables the cache entirely *)
  persist : bool;                  (* write pure entries to the store *)
  store : Store.t;
  tbl : (string, entry) Hashtbl.t;
  inflight : (string, flight) Hashtbl.t;
  mutable tick : int;
  (* per-daemon counts for the stats reply (the Obs counters below are
     process-wide and shared by every daemon in the process) *)
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
}

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_coalesced = Obs.Metrics.counter "cache.coalesced"

let entry_json e =
  Json.Obj
    [
      ("result", Job.result_to_json e.e_result);
      ("stages_done", Json.Int e.e_stages);
      ("applications", Json.Int e.e_applications);
      ("considered", Json.Int e.e_considered);
    ]

let entry_of_json ~key ~persisted j =
  match Json.member "result" j with
  | None -> None
  | Some r ->
      Some
        {
          e_key = key;
          e_result = Job.result_of_json r;
          e_stages = Option.value (Json.mem_int "stages_done" j) ~default:0;
          e_applications = Option.value (Json.mem_int "applications" j) ~default:0;
          e_considered = Option.value (Json.mem_int "considered" j) ~default:0;
          e_instance = None;  (* only pure entries persist *)
          e_persisted = persisted;
          e_tick = 0;
        }

let create ~capacity ~persist store =
  let t =
    {
      capacity = max 0 capacity;
      persist;
      store;
      tbl = Hashtbl.create 64;
      inflight = Hashtbl.create 16;
      tick = 0;
      hits = 0;
      misses = 0;
      coalesced = 0;
      evictions = 0;
    }
  in
  if t.capacity > 0 && persist then
    List.iter
      (fun (key, json) ->
        match entry_of_json ~key ~persisted:true json with
        | Some e when Hashtbl.length t.tbl < t.capacity ->
            Hashtbl.replace t.tbl key e
        | Some _ | None -> Store.remove_result store key)
      (Store.load_results store);
  t

let enabled t = t.capacity > 0
let entries t = Hashtbl.length t.tbl
let inflight t = Hashtbl.length t.inflight

(* Internal lookup for follower replication — no hit accounting, no LRU
   touch: the primary's completion is one logical execution however many
   duplicates it answers. *)
let find_entry t key = Hashtbl.find_opt t.tbl key

(* Membership without accounting, for the recovery sweep of the
   persistent segment: a [.res] file whose key is not resident after
   [create] reloaded the segment is an orphan. *)
let mem t key = Hashtbl.mem t.tbl key

let evict_to_capacity t =
  while Hashtbl.length t.tbl > t.capacity do
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some v when v.e_tick <= e.e_tick -> acc
          | _ -> Some e)
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some e ->
        Hashtbl.remove t.tbl e.e_key;
        if e.e_persisted then Store.remove_result t.store e.e_key;
        t.evictions <- t.evictions + 1
  done

(* Route a keyed job: serve it from an entry, park it behind the running
   primary, or make it the primary that runs for everyone. *)
let acquire t ~key ~job_id =
  if t.capacity = 0 then `Bypass
  else
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        t.tick <- t.tick + 1;
        e.e_tick <- t.tick;
        t.hits <- t.hits + 1;
        Obs.Metrics.incr m_hits;
        `Hit e
    | None -> (
        match Hashtbl.find_opt t.inflight key with
        | Some f ->
            f.f_followers <- f.f_followers @ [ job_id ];
            t.coalesced <- t.coalesced + 1;
            Obs.Metrics.incr m_coalesced;
            `Follower
        | None ->
            t.misses <- t.misses + 1;
            Obs.Metrics.incr m_misses;
            Hashtbl.replace t.inflight key { f_primary = job_id; f_followers = [] };
            `Primary)

(* The primary finished with a result: insert the entry (persisting pure
   entries if configured) and hand back the parked followers for
   replication. *)
let complete t ~key ~instance ~result ~stages ~applications ~considered =
  let followers =
    match Hashtbl.find_opt t.inflight key with
    | Some f ->
        Hashtbl.remove t.inflight key;
        f.f_followers
    | None -> []
  in
  if t.capacity > 0 then begin
    let persisted = t.persist && instance = None in
    let e =
      {
        e_key = key;
        e_result = result;
        e_stages = stages;
        e_applications = applications;
        e_considered = considered;
        e_instance = instance;
        e_persisted = persisted;
        e_tick =
          (t.tick <- t.tick + 1;
           t.tick);
      }
    in
    Hashtbl.replace t.tbl key e;
    (* a failed write only costs persistence, never correctness *)
    if persisted then
      (match Store.save_result t.store ~key (entry_json e) with
      | Ok () | Error _ -> ());
    evict_to_capacity t
  end;
  followers

(* The primary ended without a result (faulted/cancelled/lost): drop the
   flight and return the followers so the server can promote one. *)
let abandon t ~key =
  match Hashtbl.find_opt t.inflight key with
  | Some f ->
      Hashtbl.remove t.inflight key;
      f.f_followers
  | None -> []

(* A parked follower went terminal on its own (cancelled). *)
let drop_follower t ~key ~job_id =
  match Hashtbl.find_opt t.inflight key with
  | Some f -> f.f_followers <- List.filter (fun id -> id <> job_id) f.f_followers
  | None -> ()

let is_primary t ~key ~job_id =
  match Hashtbl.find_opt t.inflight key with
  | Some f -> f.f_primary = job_id
  | None -> false

(* Strict invalidation: an edit committed on [name] — every cached read
   of that instance dies now.  (Version-keying already makes the old
   entries unreachable; sweeping them keeps capacity honest and makes
   staleness impossible even if a version counter were ever reused.) *)
let drop_instance t name =
  let doomed =
    Hashtbl.fold
      (fun key e acc -> if e.e_instance = Some name then key :: acc else acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) doomed;
  List.length doomed

let stats_json t =
  Json.Obj
    [
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("coalesced", Json.Int t.coalesced);
      ("evictions", Json.Int t.evictions);
      ("entries", Json.Int (entries t));
      ("inflight", Json.Int (inflight t));
    ]
