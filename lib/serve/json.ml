(* A minimal JSON value type with a recursive-descent parser and a
   compact printer — just enough for the daemon's newline-delimited wire
   protocol and the job manifests.  No external dependency: the repo
   deliberately ships its own ~200 lines instead of pulling in a JSON
   library the container may not have.

   Numbers without [.eE] parse as [Int] (OCaml 63-bit); anything else as
   [Float].  Strings decode the standard escapes; [\uXXXX] is encoded
   back to UTF-8 bytes, with high+low surrogate pairs recombined into one
   4-byte code point and lone surrogates rejected as a parse error. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec print_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | String s -> escape_into b s
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          print_into b v)
        vs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          print_into b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  print_into b v;
  Buffer.contents b

(* --- parsing ----------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail m = raise (Bad (Printf.sprintf "%s at offset %d" m !pos)) in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let utf8_into b c =
    if c < 0x80 then Buffer.add_char b (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (c lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3f)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xe0 lor (c lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xf0 lor (c lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3f)))
    end
  in
  (* A \u escape: BMP scalars pass through; a high surrogate must be
     chased by a \uXXXX low surrogate (the pair recombines into one
     supplementary code point, 4 UTF-8 bytes); anything else
     surrogate-shaped is malformed. *)
  let unicode_escape b =
    let c = hex4 () in
    if c >= 0xd800 && c <= 0xdbff then begin
      if
        not
          (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
      then fail "lone high surrogate";
      pos := !pos + 2;
      let lo = hex4 () in
      if lo < 0xdc00 || lo > 0xdfff then fail "lone high surrogate";
      utf8_into b (0x10000 + ((c - 0xd800) lsl 10) + (lo - 0xdc00))
    end
    else if c >= 0xdc00 && c <= 0xdfff then fail "lone low surrogate"
    else utf8_into b c
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          let c = s.[!pos] in
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' -> unicode_escape b
          | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let num_char c =
      c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      || (c >= '0' && c <= '9')
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* integer literal overflowing 63 bits: keep it as a float *)
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  (* Nesting is bounded so hostile input ([[[[…) fails as a parse
     error instead of a stack overflow escaping the [Bad] handler and
     killing the daemon's select loop. *)
  let max_depth = 512 in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            ws ();
            expect '"';
            let k = string_body () in
            ws ();
            expect ':';
            let v = value (depth + 1) in
            ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = value (depth + 1) in
            ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' ->
        advance ();
        String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some c when c = '-' || (c >= '0' && c <= '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = value 0 in
    ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* --- accessors --------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List vs -> Some vs | _ -> None

let string_list v =
  Option.bind (to_list v) (fun vs ->
      let ss = List.filter_map to_str vs in
      if List.length ss = List.length vs then Some ss else None)

(* Typed member lookups, for decoding requests/manifests. *)
let mem_int k v = Option.bind (member k v) to_int
let mem_float k v = Option.bind (member k v) to_float
let mem_str k v = Option.bind (member k v) to_str
let mem_bool k v = Option.bind (member k v) to_bool
let mem_list k v = Option.bind (member k v) to_list
let mem_string_list k v = Option.bind (member k v) string_list
