(* The quantum executor: one scheduling slice of one job.

   Chase jobs are preemptible: a slice runs the engine for at most
   [quantum.stages] further (absolute) stages — and, when configured, a
   wall-clock sub-deadline — under a governor carrying the daemon's
   cancel token.  The engine's stage-boundary snapshots (PR 5) are the
   suspend mechanism: a job cut by its quantum publishes the last
   boundary snapshot to the job store and reports [Suspended]; the next
   slice resumes from the checkpoint with absolute stage numbering, so
   the finished structure is bit-identical to an uninterrupted governed
   run (the digest in the result is the witness).

   The other job classes are bounded by their own budgets and run to
   completion within one slice; they still honor the cancel token, so
   drain interrupts them cleanly.

   Slices run on pool worker domains: everything here touches only the
   job's own structures plus the job's own store files (unique temp
   names make concurrent checkpoint writes safe), and Obs counters,
   whose racy increments are benign. *)

module G = Resilience.Governor
module CK = Resilience.Checkpoint

type quantum = {
  stages : int;    (* further chase stages per slice *)
  seconds : float; (* wall-clock sub-deadline per slice; 0 = none *)
}

let default_quantum = { stages = 4; seconds = 0. }

let ckpt_kind = "tgd-chase"

let digest_of_string s = Digest.to_hex (Digest.string s)

(* --- held instances ----------------------------------------------------- *)

(* The daemon-held maintained chase instances that mutate jobs drive,
   keyed by client-chosen name.  An entry is the live [Chase.Maint]
   derivation-support state: edits against it are incremental
   (counting/DRed over the provenance journal) instead of re-chasing
   from scratch, and a long re-derive phase suspends in memory at the
   quantum like any chase suspends to disk.

   The table structure is touched under a mutex — slices of one round
   run on separate pool domains.  The [Maint] state inside an entry
   never needs one: the scheduler serializes jobs per instance (at most
   one in any round), and the fork-join barrier between rounds
   publishes its mutations to whichever domain runs the next slice. *)
type held = {
  h_maint : Tgd.Chase.Maint.t;
  h_fresh : (int, int) Hashtbl.t; (* negative wire ids -> allocated elems *)
  h_applied : (string, int * int) Hashtbl.t; (* job id -> (killed, refired) *)
}

type instances = { itbl : (string, held) Hashtbl.t; imu : Mutex.t }

let instances () = { itbl = Hashtbl.create 8; imu = Mutex.create () }

let locked is f =
  Mutex.lock is.imu;
  Fun.protect ~finally:(fun () -> Mutex.unlock is.imu) f

let find_instance is name = locked is (fun () -> Hashtbl.find_opt is.itbl name)

let add_instance is name h =
  locked is (fun () -> Hashtbl.replace is.itbl name h)

(* Forget every held instance (daemon restart does this implicitly; the
   tests use it to model one). *)
let reset_instances is = locked is (fun () -> Hashtbl.reset is.itbl)

(* --- chase ------------------------------------------------------------- *)

let finish_chase ~store (job : Job.t) (stats : Tgd.Chase.stats) d =
  let detail =
    [
      ("stages", Json.Int stats.Tgd.Chase.stages);
      ("applications", Json.Int stats.Tgd.Chase.applications);
      ("facts", Json.Int (Relational.Structure.size d));
      ("elems", Json.Int (Relational.Structure.card d));
    ]
  in
  job.Job.state <-
    Job.Done
      (Job.result_of_outcome ~digest:(Job.structure_digest d) ~detail
         stats.Tgd.Chase.outcome);
  Store.remove_checkpoint store job.Job.id

let suspend_chase ~store (job : Job.t) last_snap =
  match last_snap with
  | Some snap -> (
      match CK.save ~kind:ckpt_kind (Store.ckpt_path store job.Job.id) snap with
      | Ok () -> job.Job.state <- Job.Suspended
      | Error m -> job.Job.state <- Job.Faulted ("checkpoint: " ^ m))
  | None ->
      (* the quantum expired before the first boundary of this slice:
         nothing new to persist; the job simply goes back to the queue
         (an earlier slice's checkpoint, if any, is still the resume
         point) *)
      job.Job.state <-
        (if Store.has_checkpoint store job.Job.id then Job.Suspended
         else Job.Queued)

let run_chase_slice ~store ~cancel ~quantum (job : Job.t) ~views ~q0
    ~max_stages ~engine =
  match Job.parse_rules views q0 with
  | Error m -> job.Job.state <- Job.Faulted m
  | Ok (views, q0) -> (
      let deps = Tgd.Dep.t_q views in
      let quantum =
        match job.Job.quantum_override with
        | Some s -> { quantum with stages = s }
        | None -> quantum
      in
      let target = min max_stages (job.Job.stages_done + quantum.stages) in
      let governor =
        if quantum.seconds > 0. then
          G.make ~deadline_in:quantum.seconds ~cancel ()
        else G.make ~cancel ()
      in
      let last_snap = ref None in
      let on_snapshot s = last_snap := Some s in
      let ran =
        if Store.has_checkpoint store job.Job.id then
          match CK.load ~kind:ckpt_kind (Store.ckpt_path store job.Job.id) with
          | Error m -> Error ("checkpoint: " ^ m)
          | Ok snap ->
              Ok
                (Tgd.Chase.resume ~jobs:1 ~governor ~max_stages:target
                   ~snapshot_every:1 ~on_snapshot deps snap)
        else
          let d = fst (Tgd.Greenred.green_canonical q0) in
          let stats =
            Tgd.Chase.run ~engine ~jobs:1 ~governor ~max_stages:target
              ~snapshot_every:1 ~on_snapshot deps d
          in
          Ok (stats, d)
      in
      match ran with
      | Error m -> job.Job.state <- Job.Faulted m
      | Ok (stats, d) -> (
          job.Job.stages_done <- stats.Tgd.Chase.stages;
          job.Job.applications <- stats.Tgd.Chase.applications;
          job.Job.considered <- stats.Tgd.Chase.triggers_considered;
          match stats.Tgd.Chase.outcome with
          | G.Fixpoint -> finish_chase ~store job stats d
          | G.Budget G.Stages when stats.Tgd.Chase.stages >= max_stages ->
              (* the job's own fuel, not the quantum: done *)
              finish_chase ~store job stats d
          | G.Budget G.Stages | G.Deadline ->
              (* quantum exhausted mid-flight: suspend at the last
                 boundary snapshot and let the queue move on *)
              suspend_chase ~store job !last_snap
          | G.Budget _ -> finish_chase ~store job stats d
          | G.Cancelled ->
              (* drain (or per-job cancel observed mid-slice): persist
                 the boundary and keep the job resumable *)
              suspend_chase ~store job !last_snap
          | G.Faulted site -> job.Job.state <- Job.Faulted site))

(* --- determinacy ------------------------------------------------------- *)

let run_determinacy ~cancel (job : Job.t) ~views ~q0 ~max_stages ~engine =
  match Job.parse_rules views q0 with
  | Error m -> job.Job.state <- Job.Faulted m
  | Ok (views, q0) ->
      let inst = Determinacy.Instance.make ~views ~q0 in
      let governor = G.make ~cancel () in
      let verdict v = Format.asprintf "%a" Determinacy.Solver.pp_verdict v in
      let unrestricted =
        verdict
          (Determinacy.Solver.unrestricted ~engine ~jobs:1 ~governor
             ~max_stages inst)
      in
      let finite =
        verdict (Determinacy.Solver.finite ~engine ~jobs:1 ~governor inst)
      in
      let outcome = if G.cancelled governor then G.Cancelled else G.Fixpoint in
      let detail =
        [
          ("unrestricted", Json.String unrestricted);
          ("finite", Json.String finite);
        ]
      in
      job.Job.state <-
        Job.Done
          (Job.result_of_outcome
             ~digest:(digest_of_string (unrestricted ^ "|" ^ finite))
             ~detail outcome)

(* --- worm -------------------------------------------------------------- *)

let run_worm ~cancel (job : Job.t) ~machine ~steps =
  match Zoo_table.oracle machine with
  | None -> job.Job.state <- Job.Faulted ("unknown machine " ^ machine)
  | Some o ->
      let governor = G.make ~cancel () in
      let tr = Rainworm.Sim.creep ~max_steps:steps ~governor o in
      let final =
        Format.asprintf "%a" Rainworm.Sym.pp_word (Rainworm.Sim.final_config tr)
      in
      let detail =
        [
          ("steps", Json.Int tr.Rainworm.Sim.steps);
          ("cycles", Json.Int tr.Rainworm.Sim.cycles);
          ("max_length", Json.Int tr.Rainworm.Sim.max_length);
          ("halted", Json.Bool (Rainworm.Sim.halted tr));
        ]
      in
      job.Job.state <-
        Job.Done
          (Job.result_of_outcome ~digest:(digest_of_string final) ~detail
             tr.Rainworm.Sim.verdict)

(* --- audit ------------------------------------------------------------- *)

let run_audit (job : Job.t) ~seed ~cases ~max_stages ~family ~from_case =
  let budget = { Oracle.Diff.default_budget with Oracle.Diff.max_stages } in
  match Oracle.Shard.family_of_name family with
  | None -> job.Job.state <- Job.Faulted ("unknown oracle family " ^ family)
  | Some fam ->
      let o = Oracle.Shard.run ~budget fam ~seed ~lo:from_case ~n:cases in
      let counter k =
        Option.value ~default:0 (List.assoc_opt k o.Oracle.Shard.o_counters)
      in
      let bad = List.length o.Oracle.Shard.o_corpus in
      let detail =
        [
          ("family", Json.String family);
          ("from_case", Json.Int from_case);
          ("cases", Json.Int cases);
          ("engine_runs", Json.Int (counter "engine_runs"));
          ("budget_exceeded", Json.Int (counter "budget_exceeded"));
          ("violations", Json.Int bad);
          ( "counters",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Int v))
                 o.Oracle.Shard.o_counters) );
          ( "corpus",
            Json.List
              (List.map
                 (fun (e : Oracle.Shard.entry) ->
                   Json.Obj
                     [
                       ("case", Json.Int e.Oracle.Shard.e_case);
                       ("kind", Json.String e.Oracle.Shard.e_kind);
                       ( "desc",
                         Json.List
                           (List.map
                              (fun s -> Json.String s)
                              e.Oracle.Shard.e_desc) );
                     ])
                 o.Oracle.Shard.o_corpus) );
        ]
      in
      let r =
        if bad = 0 then Job.result_of_outcome ~detail G.Fixpoint
        else { Job.outcome = "violations"; exit_code = 1; digest = ""; detail }
      in
      job.Job.state <- Job.Done r

(* --- mutate ------------------------------------------------------------- *)

module M = Tgd.Chase.Maint

(* Decode one wire edit op against the held structure.  Negative element
   ids allocate fresh elements, remembered per instance so a later op
   (or a later job) can refer back to them. *)
let op_fact d fresh (o : Job.edit_op) =
  let sym =
    Relational.Symbol.make ~color:Relational.Symbol.Green o.Job.rel
      (List.length o.Job.args)
  in
  let args =
    Array.of_list
      (List.map
         (fun a ->
           if a >= 0 then a
           else
             match Hashtbl.find_opt fresh a with
             | Some e -> e
             | None ->
                 let e = Relational.Structure.fresh d in
                 Hashtbl.replace fresh a e;
                 e)
         o.Job.args)
  in
  let f = Relational.Fact.make sym args in
  if o.Job.add then M.Insert f else M.Retract f

let finish_mutate (job : Job.t) (h : held) ~instance
    (stats : Tgd.Chase.stats) =
  let d = M.structure h.h_maint in
  let killed, refired =
    Option.value ~default:(0, 0) (Hashtbl.find_opt h.h_applied job.Job.id)
  in
  let detail =
    [
      ("instance", Json.String instance);
      ("applied", Json.Bool (Hashtbl.mem h.h_applied job.Job.id));
      ("killed", Json.Int killed);
      ("refired", Json.Int refired);
      ("facts", Json.Int (Relational.Structure.size d));
      ("elems", Json.Int (Relational.Structure.card d));
    ]
  in
  job.Job.state <-
    Job.Done
      (Job.result_of_outcome ~digest:(Job.structure_digest d) ~detail
         stats.Tgd.Chase.outcome)

(* One slice of a mutate job.  First touch chases the instance's
   definition to a fixpoint under maintenance tracking; then the job's
   edit script is applied incrementally (counting decrements, DRed
   over-delete/re-derive, continuation of the insert delta).  Every
   phase runs under the quantum: a cut leaves the [Maint] continuation
   pending in daemon memory and the job suspended, so a large re-derive
   is preempted exactly like a fresh chase — just without a disk
   checkpoint, because the instance is the daemon's living state. *)
let run_mutate_slice ~instances ~cancel ~quantum (job : Job.t) ~instance
    ~views ~q0 ~ops ~max_stages ~engine =
  match Job.parse_rules views q0 with
  | Error m -> job.Job.state <- Job.Faulted m
  | Ok (views, q0) -> (
      match engine with
      | `Stage | `Oblivious ->
          job.Job.state <-
            Job.Faulted "mutate: engine must be seminaive or par"
      | (`Seminaive | `Par) as engine -> (
          let deps = Tgd.Dep.t_q views in
          let quantum =
            match job.Job.quantum_override with
            | Some s -> { quantum with stages = s }
            | None -> quantum
          in
          let slice_budget =
            max 1 (min quantum.stages (max_stages - job.Job.stages_done))
          in
          let governor =
            if quantum.seconds > 0. then
              G.make ~deadline_in:quantum.seconds ~cancel ()
            else G.make ~cancel ()
          in
          match
            let h, stats =
              match find_instance instances instance with
              | Some h ->
                  ( h,
                    M.continue_ ~governor ~max_stages:slice_budget h.h_maint )
              | None ->
                  let d = fst (Tgd.Greenred.green_canonical q0) in
                  let m, stats =
                    M.create ~engine ~jobs:1 ~governor
                      ~max_stages:slice_budget deps d
                  in
                  let h =
                    {
                      h_maint = m;
                      h_fresh = Hashtbl.create 4;
                      h_applied = Hashtbl.create 4;
                    }
                  in
                  add_instance instances instance h;
                  (h, stats)
            in
            (* at fixpoint with the job's edit still out: apply it (the
               cascade is cheap; its re-derive continuation gets the
               same per-slice fuel) *)
            let stats =
              if
                (not (M.pending h.h_maint))
                && not (Hashtbl.mem h.h_applied job.Job.id)
              then begin
                let eops =
                  List.map (op_fact (M.structure h.h_maint) h.h_fresh) ops
                in
                let es =
                  M.apply_edit ~governor ~max_stages:slice_budget h.h_maint
                    eops
                in
                Hashtbl.replace h.h_applied job.Job.id
                  (es.M.e_killed, es.M.e_refired);
                es.M.e_run
              end
              else stats
            in
            (h, stats)
          with
          | exception Invalid_argument m -> job.Job.state <- Job.Faulted m
          | h, stats -> (
              job.Job.stages_done <- stats.Tgd.Chase.stages;
              job.Job.applications <- stats.Tgd.Chase.applications;
              job.Job.considered <- stats.Tgd.Chase.triggers_considered;
              match stats.Tgd.Chase.outcome with
              | G.Fixpoint when Hashtbl.mem h.h_applied job.Job.id ->
                  finish_mutate job h ~instance stats
              | G.Fixpoint ->
                  (* fixpoint but the edit phase needs its own slice *)
                  job.Job.state <- Job.Queued
              | G.Budget G.Stages when stats.Tgd.Chase.stages >= max_stages ->
                  (* the job's own fuel: report what the instance holds *)
                  finish_mutate job h ~instance stats
              | G.Budget G.Stages | G.Deadline | G.Cancelled ->
                  (* quantum exhausted (or drain) mid-run: the pending
                     continuation lives in the held instance *)
                  job.Job.state <- Job.Suspended
              | G.Budget _ -> finish_mutate job h ~instance stats
              | G.Faulted site -> job.Job.state <- Job.Faulted site)))

(* --- dispatch ---------------------------------------------------------- *)

(* Execute one slice of [job].  Never raises: any escaped exception
   becomes a [Faulted] state, so one broken job cannot take down the
   pool round it ran in. *)
let run_slice ~store ~instances ~cancel ~quantum (job : Job.t) =
  let t0 = Obs.Clock.now_s () in
  (try
     match job.Job.spec with
     | Job.Chase { views; q0; max_stages; engine } ->
         run_chase_slice ~store ~cancel ~quantum job ~views ~q0 ~max_stages
           ~engine
     | Job.Determinacy { views; q0; max_stages; engine } ->
         run_determinacy ~cancel job ~views ~q0 ~max_stages ~engine
     | Job.Worm { machine; steps } -> run_worm ~cancel job ~machine ~steps
     | Job.Audit { seed; cases; max_stages; family; from_case } ->
         run_audit job ~seed ~cases ~max_stages ~family ~from_case
     | Job.Mutate { instance; views; q0; ops; max_stages; engine } ->
         run_mutate_slice ~instances ~cancel ~quantum job ~instance ~views
           ~q0 ~ops ~max_stages ~engine
   with e -> job.Job.state <- Job.Faulted (Printexc.to_string e));
  job.Job.slices <- job.Job.slices + 1;
  job.Job.wall_s <- job.Job.wall_s +. (Obs.Clock.now_s () -. t0)
