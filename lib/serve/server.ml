(* redspiderd: the job daemon.

   One single-threaded [select] event loop owns all sockets and all job
   bookkeeping; chase work runs on a pool of persistent worker domains
   under a *continuous batching* scheduler — there is no round barrier.
   The loop dispatches runnable jobs to a shared run mailbox whenever a
   worker slot is free; each worker executes one quantum
   ([Runner.run_slice]), pushes the job onto a completion queue, and
   pulls the next one immediately.  A worker never waits for its
   round-mates, and socket I/O overlaps compute: the loop keeps
   accepting clients and answering requests while slices are in flight,
   woken by a self-pipe byte whenever a completion lands.

   Job bookkeeping still happens only on the loop thread: workers touch
   nothing but the job handed to them (plus the instance table, which
   has its own lock), and every state transition — dispatch, completion,
   cancel, cache fill — is applied by the loop.  Publication between
   the loop and a worker, and between consecutive slices of one job or
   one instance, flows through the mailbox mutex.  Cancelling a job
   whose slice is on a worker is deferred: the request marks the job and
   the loop applies it when the slice reports back (at most one quantum
   later) — the same boundary preemption has always used.  Per-instance
   submission-order serialization is unchanged: a job driving a held
   instance is dispatched only when no earlier-submitted job of that
   instance is still live, so edits land in order and the [Maint] state
   is never shared between concurrent slices.  Status snapshots of a
   running job may observe a slice mid-update; that is the same
   instantaneous fuzziness a round-based status had, made visible.

   Results are cached ([Cache]) under canonical digest keys
   ([Job.cache_class]): a submission whose key matches a completed entry
   is answered immediately with the identical result — digest included —
   at zero slices; duplicates of a key already in flight coalesce behind
   the running primary and are completed by replication when it
   finishes.  Pure entries persist as [<key>.res] files in the job store
   and survive restarts.  Reads of a daemon-held instance are keyed by a
   predicted instance version — the applied-edit count the read will
   observe under per-instance ordering — and every committed (or
   aborted-after-touching) edit bumps the version and sweeps the
   instance's entries, so an edited instance can never serve a stale
   digest.

   The wire protocol is newline-delimited JSON, one request per line,
   one response line per request, over a Unix socket (and optionally a
   loopback TCP socket).  Ops: ping, submit, status, wait, cancel,
   jobs, stats, drain.

   Durability: every lifecycle transition is published to the job store
   before it is acted on ([Store.save_manifest], atomic tmp+fsync+
   rename), and suspended chases keep their last stage-boundary snapshot
   as [<id>.ckpt].  On restart the daemon rescans the store: terminal
   jobs become history, queued/suspended jobs re-enter the run queue
   (re-claiming their cache keys in submission order, so pre-drain
   coalescing groups reform), and a job frozen as "running" (the daemon
   died inside a slice) is demoted to its last checkpoint or to a fresh
   start — the slice it died in was never published, so no torn state
   can be resumed.

   Drain (SIGTERM or the [drain] op) trips the shared cancel token:
   in-flight slices end at the next stage boundary and are checkpointed
   as suspended; the loop stops dispatching, waits for the last
   completion, persists everything, answers pending waiters, closes the
   sockets, joins the workers and returns cleanly. *)

module G = Resilience.Governor

type config = {
  socket : string;           (* Unix socket path *)
  tcp_port : int option;     (* optional loopback TCP listener *)
  workers : int;             (* worker domains = max concurrent slices *)
  quantum : Runner.quantum;  (* default preemption quantum *)
  store_dir : string;        (* job store directory *)
  cache_capacity : int;      (* result-cache entries; 0 disables *)
  cache_persist : bool;      (* keep pure entries as [.res] files *)
  read_deadline_s : float;   (* idle limit for clients the daemon owes
                                no reply; half-open peers are dropped *)
  max_frame : int;           (* max in-flight bytes of one request line *)
  log : bool;                (* chatter on stderr *)
}

let default_config ~socket ~store_dir =
  {
    socket;
    tcp_port = None;
    workers = 4;
    quantum = Runner.default_quantum;
    store_dir;
    cache_capacity = 512;
    cache_persist = true;
    read_deadline_s = 60.;
    max_frame = 1 lsl 20;
    log = false;
  }

type waiter = { wfd : Unix.file_descr; wdeadline : float option }

(* The worker mailbox.  [eq] carries dispatched jobs to the workers,
   [edone] carries finished slices back; both under [emu].  The loop is
   woken by a byte on the self-pipe.  [eidle_s] accumulates worker time
   spent parked waiting for work — the scheduler's overlap metric. *)
type exec = {
  emu : Mutex.t;
  econd : Condition.t;
  eq : Job.t Queue.t;
  edone : Job.t Queue.t;
  mutable estop : bool;
  mutable eidle_s : float;
  epipe_r : Unix.file_descr;
  epipe_w : Unix.file_descr;
  mutable edomains : unit Domain.t list;
}

type t = {
  cfg : config;
  store : Store.t;
  instances : Runner.instances; (* daemon-held maintained chase instances *)
  cache : Cache.t;
  jobs : (string, Job.t) Hashtbl.t;
  queue : string Queue.t;
  mutable seq : int;
  drain : G.Cancel.t;        (* shared by every slice's governor *)
  mutable stop : bool;
  waiters : (string, waiter list) Hashtbl.t;
  (* per-instance applied-edit versions, for instance-read cache keys *)
  iversions : (string, int) Hashtbl.t;
  (* cancels requested while the job's slice was on a worker *)
  cancel_req : (string, unit) Hashtbl.t;
  mutable inflight : int;    (* dispatched, completion not yet processed *)
  ex : exec;
  mutable listeners : Unix.file_descr list;
  mutable clients : Unix.file_descr list;
  bufs : (Unix.file_descr, Buffer.t) Hashtbl.t;
  last_rx : (Unix.file_descr, float) Hashtbl.t; (* per-client last byte *)
  mutable slices_total : int;
  started_s : float;         (* monotonic *)
}

let m_idle = Obs.Metrics.counter "sched.idle_ms"

let logf t fmt =
  if t.cfg.log then Printf.eprintf ("redspiderd: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* --- plumbing ----------------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let drop_client t fd =
  t.clients <- List.filter (fun c -> c <> fd) t.clients;
  Hashtbl.remove t.bufs fd;
  Hashtbl.remove t.last_rx fd;
  (* forget any waits registered by this client *)
  Hashtbl.iter
    (fun id ws ->
      let ws' = List.filter (fun w -> w.wfd <> fd) ws in
      if List.length ws' <> List.length ws then Hashtbl.replace t.waiters id ws')
    (Hashtbl.copy t.waiters);
  try Unix.close fd with Unix.Unix_error _ -> ()

let send t fd (v : Json.t) =
  let line = Json.to_string v ^ "\n" in
  try write_all fd line 0 (String.length line)
  with Unix.Unix_error _ | Sys_error _ -> drop_client t fd

let error_json msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let ok_fields fields = Json.Obj (("ok", Json.Bool true) :: fields)

(* --- job bookkeeping ---------------------------------------------------- *)

let persist t job =
  match Store.save_manifest t.store job with
  | Ok () -> ()
  | Error m -> logf t "manifest %s: %s" job.Job.id m

let notify_waiters t (job : Job.t) =
  match Hashtbl.find_opt t.waiters job.Job.id with
  | None -> ()
  | Some ws ->
      Hashtbl.remove t.waiters job.Job.id;
      List.iter
        (fun w -> send t w.wfd (ok_fields [ ("job", Job.summary_json job) ]))
        ws

let enqueue t (job : Job.t) = Queue.add job.Job.id t.queue

(* Expire [wait] requests whose client-supplied timeout has passed. *)
let expire_waiters t =
  let now = Obs.Clock.now_s () in
  Hashtbl.iter
    (fun id ws ->
      let expired, live =
        List.partition
          (fun w -> match w.wdeadline with Some d -> now >= d | None -> false)
          ws
      in
      if expired <> [] then begin
        Hashtbl.replace t.waiters id live;
        let payload =
          match Hashtbl.find_opt t.jobs id with
          | Some job ->
              ok_fields
                [ ("timeout", Json.Bool true); ("job", Job.summary_json job) ]
          | None -> error_json ("unknown job " ^ id)
        in
        List.iter (fun w -> send t w.wfd payload) expired
      end)
    (Hashtbl.copy t.waiters)

(* --- result cache ------------------------------------------------------- *)

(* The entry a terminal mutate-read keys; pure entries record no
   instance. *)
let entry_instance (job : Job.t) =
  match job.Job.spec with
  | Job.Mutate { instance; ops = []; _ } -> Some instance
  | _ -> None

(* The instance version a read submitted as [seq] will observe: the
   applied-edit count so far plus every live edit submitted before it —
   exact under per-instance submission-order serialization, because by
   the time the read runs, precisely those edits have gone terminal. *)
let predicted_version t instance seq =
  Hashtbl.fold
    (fun _ (o : Job.t) acc ->
      match o.Job.spec with
      | Job.Mutate { instance = i; ops = _ :: _; _ }
        when i = instance && o.Job.seq < seq && not (Job.terminal o) ->
          acc + 1
      | _ -> acc)
    t.jobs
    (Option.value ~default:0 (Hashtbl.find_opt t.iversions instance))

(* Complete [job] from a cache entry: identical result (digest included)
   and replayed counters, zero slices. *)
let serve_from_entry (job : Job.t) (e : Cache.entry) =
  job.Job.state <- Job.Done e.Cache.e_result;
  job.Job.stages_done <- e.Cache.e_stages;
  job.Job.applications <- e.Cache.e_applications;
  job.Job.considered <- e.Cache.e_considered

(* Route a fresh (or recovered) job through the cache.  [`Served]: done
   right now from an entry.  [`Parked]: a duplicate of an in-flight key,
   left Queued but off the run queue — the primary's completion will
   finish it.  [`Run]: it must execute. *)
let try_cache t (job : Job.t) =
  if not (Cache.enabled t.cache) then `Run
  else begin
    let route key =
      job.Job.ckey <- Some key;
      match Cache.acquire t.cache ~key ~job_id:job.Job.id with
      | `Bypass | `Primary -> `Run
      | `Hit e ->
          serve_from_entry job e;
          `Served
      | `Follower -> `Parked
    in
    match Job.cache_class job.Job.spec with
    | Job.Uncacheable -> `Run
    | Job.Pure key -> route key
    | Job.Instance_read { instance; partial } ->
        route
          (Printf.sprintf "%s:%s:v%d" partial instance
             (predicted_version t instance job.Job.seq))
  end

(* --- terminal transitions ----------------------------------------------- *)

(* Apply everything a terminal state implies: checkpoint removal,
   instance-version bump + strict invalidation for committed edits,
   cache fill + follower replication (or abandonment + promotion),
   persistence, waiter notification.  Runs on the loop thread only. *)
let rec on_terminal t (job : Job.t) =
  Store.remove_checkpoint t.store job.Job.id;
  (match job.Job.spec with
  | Job.Mutate { instance; ops = _ :: _; _ } ->
      (* the edit is over — committed, faulted or cancelled, it may have
         touched the instance, so the version moves on and every cached
         read of the old version dies *)
      Hashtbl.replace t.iversions instance
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.iversions instance));
      let dropped = Cache.drop_instance t.cache instance in
      if dropped > 0 then
        logf t "cache: invalidated %d entr(ies) of instance %s" dropped instance
  | _ -> ());
  (match job.Job.ckey with
  | None -> ()
  | Some key ->
      if Cache.is_primary t.cache ~key ~job_id:job.Job.id then
        match job.Job.state with
        | Job.Done r ->
            let followers =
              Cache.complete t.cache ~key ~instance:(entry_instance job)
                ~result:r ~stages:job.Job.stages_done
                ~applications:job.Job.applications
                ~considered:job.Job.considered
            in
            (* replicate onto every parked duplicate: same terminal
               path, zero slices each *)
            List.iter
              (fun fid ->
                match Hashtbl.find_opt t.jobs fid with
                | Some f when not (Job.terminal f) -> (
                    match Cache.find_entry t.cache key with
                    | Some e ->
                        serve_from_entry f e;
                        on_terminal t f
                    | None ->
                        (* cache disabled mid-flight is impossible, but a
                           fallback keeps the follower correct anyway *)
                        serve_from_entry f
                          {
                            Cache.e_key = key;
                            e_result = r;
                            e_stages = job.Job.stages_done;
                            e_applications = job.Job.applications;
                            e_considered = job.Job.considered;
                            e_instance = entry_instance job;
                            e_persisted = false;
                            e_tick = 0;
                          };
                        on_terminal t f)
                | _ -> ())
              followers
        | _ ->
            (* the primary never produced a result: promote the first
               live follower to primary (re-routing the rest behind it)
               and put it on the run queue *)
            List.iter
              (fun fid ->
                match Hashtbl.find_opt t.jobs fid with
                | Some f when not (Job.terminal f) -> (
                    match try_cache t f with
                    | `Run -> enqueue t f
                    | `Served ->
                        persist t f;
                        notify_waiters t f
                    | `Parked -> ())
                | _ -> ())
              (Cache.abandon t.cache ~key)
      else Cache.drop_follower t.cache ~key ~job_id:job.Job.id);
  persist t job;
  notify_waiters t job

(* --- continuous dispatch ------------------------------------------------ *)

let runnable (job : Job.t) =
  match job.Job.state with Job.Queued | Job.Suspended -> true | _ -> false

(* Jobs driving the same held instance are serialized, in submission
   order: a job is deferred while any earlier-submitted job on its
   instance is still alive (the [Maint] state is not shareable between
   concurrent slices, and edits must land in order).  At most one job
   per instance is ever in flight — a later job of the instance is
   blocked by the earlier one until its terminal transition. *)
let blocked t (job : Job.t) name =
  Hashtbl.fold
    (fun _ (o : Job.t) acc ->
      acc
      || (o.Job.seq < job.Job.seq
         && (not (Job.terminal o))
         && Job.instance_of o.Job.spec = Some name))
    t.jobs false

(* Hand runnable jobs to the workers until every slot is busy.  Work-
   conserving: called after every completion and every submit, so a
   freed slot is refilled as soon as anything is runnable. *)
let dispatch t =
  let deferred = ref [] in
  while t.inflight < t.cfg.workers && not (Queue.is_empty t.queue) do
    let id = Queue.pop t.queue in
    match Hashtbl.find_opt t.jobs id with
    | Some job when runnable job -> (
        match Job.instance_of job.Job.spec with
        | Some name when blocked t job name -> deferred := id :: !deferred
        | _ ->
            job.Job.state <- Job.Running;
            persist t job;
            t.inflight <- t.inflight + 1;
            Mutex.lock t.ex.emu;
            Queue.add job t.ex.eq;
            Condition.signal t.ex.econd;
            Mutex.unlock t.ex.emu)
    | _ -> () (* cancelled or already terminal: drop the stale entry *)
  done;
  List.iter (fun id -> Queue.add id t.queue) (List.rev !deferred)

(* Drain the completion queue and apply each slice's verdict.  The only
   place [inflight] decreases. *)
let process_completions t =
  let finished = ref [] in
  Mutex.lock t.ex.emu;
  while not (Queue.is_empty t.ex.edone) do
    finished := Queue.pop t.ex.edone :: !finished
  done;
  Mutex.unlock t.ex.emu;
  List.iter
    (fun (job : Job.t) ->
      t.inflight <- t.inflight - 1;
      t.slices_total <- t.slices_total + 1;
      (* a cancel requested mid-slice lands here, at the boundary *)
      if Hashtbl.mem t.cancel_req job.Job.id then begin
        Hashtbl.remove t.cancel_req job.Job.id;
        if not (Job.terminal job) then job.Job.state <- Job.Cancelled
      end;
      match job.Job.state with
      | Job.Queued | Job.Suspended ->
          persist t job;
          enqueue t job
      | Job.Running ->
          (* a slice must leave a verdict; treat silence as a fault *)
          job.Job.state <- Job.Faulted "slice returned without a verdict";
          on_terminal t job
      | Job.Done _ | Job.Faulted _ | Job.Cancelled -> on_terminal t job)
    (List.rev !finished)

(* --- request handling --------------------------------------------------- *)

let counts_json t =
  let tally = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (j : Job.t) ->
      let k = Job.state_name j.Job.state in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    t.jobs;
  Json.Obj
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tally []))

let sorted_jobs t =
  List.sort
    (fun (a : Job.t) b -> compare a.Job.seq b.Job.seq)
    (Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [])

let handle_submit t req =
  let spec_json = Option.value ~default:req (Json.member "spec" req) in
  match Job.spec_of_json spec_json with
  | Error m -> error_json m
  | Ok spec -> (
      match Job.validate spec with
      | Error m -> error_json m
      | Ok () ->
          let quantum = Json.mem_int "quantum" req in
          let job = Job.make ~seq:t.seq ?quantum spec in
          t.seq <- t.seq + 1;
          Hashtbl.replace t.jobs job.Job.id job;
          (match try_cache t job with
          | `Run ->
              persist t job;
              enqueue t job
          | `Parked -> persist t job
          | `Served ->
              persist t job;
              notify_waiters t job);
          ok_fields
            [
              ("id", Json.String job.Job.id);
              ("kind", Json.String (Job.kind job.Job.spec));
              ("state", Json.String (Job.state_name job.Job.state));
            ])

let handle_cancel t req =
  match Json.mem_str "id" req with
  | None -> error_json "missing id"
  | Some id -> (
      match Hashtbl.find_opt t.jobs id with
      | None -> error_json ("unknown job " ^ id)
      | Some job ->
          (if not (Job.terminal job) then
             match job.Job.state with
             | Job.Running ->
                 (* the slice is on a worker: apply at its boundary *)
                 Hashtbl.replace t.cancel_req id ()
             | _ ->
                 job.Job.state <- Job.Cancelled;
                 on_terminal t job);
          ok_fields [ ("job", Job.summary_json job) ])

let sched_json t =
  Json.Obj
    [
      ("idle_ms", Json.Int (int_of_float (t.ex.eidle_s *. 1000.)));
      ("inflight", Json.Int t.inflight);
      ("workers", Json.Int (List.length t.ex.edomains));
    ]

(* Returns [None] when the request registered a waiter (no reply yet). *)
let handle_request t fd line =
  match Json.parse line with
  | Error m -> Some (error_json ("bad request: " ^ m))
  | Ok req -> (
      match Json.mem_str "op" req with
      | None -> Some (error_json "missing op")
      | Some "ping" ->
          Some
            (ok_fields
               [
                 ("pid", Json.Int (Unix.getpid ()));
                 ( "uptime_s",
                   Json.Float (Obs.Clock.now_s () -. t.started_s) );
               ])
      | Some "submit" -> Some (handle_submit t req)
      | Some "status" -> (
          match Json.mem_str "id" req with
          | None -> Some (error_json "missing id")
          | Some id -> (
              match Hashtbl.find_opt t.jobs id with
              | None -> Some (error_json ("unknown job " ^ id))
              | Some job -> Some (ok_fields [ ("job", Job.summary_json job) ])))
      | Some "wait" -> (
          match Json.mem_str "id" req with
          | None -> Some (error_json "missing id")
          | Some id -> (
              match Hashtbl.find_opt t.jobs id with
              | None -> Some (error_json ("unknown job " ^ id))
              | Some job ->
                  if Job.terminal job then
                    Some (ok_fields [ ("job", Job.summary_json job) ])
                  else begin
                    let wdeadline =
                      Option.map
                        (fun s -> Obs.Clock.now_s () +. s)
                        (Json.mem_float "timeout_s" req)
                    in
                    let ws =
                      Option.value ~default:[] (Hashtbl.find_opt t.waiters id)
                    in
                    Hashtbl.replace t.waiters id ({ wfd = fd; wdeadline } :: ws);
                    None
                  end))
      | Some "jobs" ->
          Some
            (ok_fields
               [ ("jobs", Json.List (List.map Job.summary_json (sorted_jobs t))) ])
      | Some "cancel" -> Some (handle_cancel t req)
      | Some "stats" ->
          Some
            (ok_fields
               [
                 ("uptime_s", Json.Float (Obs.Clock.now_s () -. t.started_s));
                 ("slices", Json.Int t.slices_total);
                 ("queued", Json.Int (Queue.length t.queue));
                 ("cache", Cache.stats_json t.cache);
                 ("sched", sched_json t);
                 ("counts", counts_json t);
                 ( "metrics",
                   Json.Obj
                     (List.map
                        (fun (k, v) -> (k, Json.Int v))
                        (Obs.Metrics.snapshot ())) );
                 ("jobs", Json.List (List.map Job.summary_json (sorted_jobs t)));
               ])
      | Some "drain" ->
          t.stop <- true;
          G.Cancel.trip t.drain;
          Some (ok_fields [ ("draining", Json.Bool true) ])
      | Some op -> Some (error_json ("unknown op " ^ op)))

(* --- socket plumbing ---------------------------------------------------- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let read_chunk t fd =
  let buf = Bytes.create 4096 in
  match Unix.read fd buf 0 4096 with
  | 0 | (exception Unix.Unix_error _) -> drop_client t fd
  | n ->
      Hashtbl.replace t.last_rx fd (Obs.Clock.now_s ());
      let b =
        match Hashtbl.find_opt t.bufs fd with
        | Some b -> b
        | None ->
            let b = Buffer.create 256 in
            Hashtbl.replace t.bufs fd b;
            b
      in
      Buffer.add_subbytes b buf 0 n;
      (* dispatch every complete line *)
      let data = Buffer.contents b in
      let rec lines from =
        match String.index_from_opt data from '\n' with
        | None ->
            Buffer.clear b;
            Buffer.add_substring b data from (String.length data - from)
        | Some nl ->
            let line = String.sub data from (nl - from) in
            if String.trim line <> "" then begin
              match handle_request t fd line with
              | Some reply -> send t fd reply
              | None -> ()
            end;
            lines (nl + 1)
      in
      lines 0;
      (* a request line still unterminated past the frame cap will never
         be served: refuse it with a structured error and close, so an
         unbounded sender cannot balloon the buffer *)
      if Buffer.length b > t.cfg.max_frame then begin
        send t fd
          (error_json
             (Printf.sprintf "frame too large (%d > %d bytes); closing"
                (Buffer.length b) t.cfg.max_frame));
        logf t "dropped client: frame over %d bytes" t.cfg.max_frame;
        drop_client t fd
      end

(* Close connections that have sent nothing for the read deadline and
   are owed no reply (a registered waiter legitimately sits silent for
   as long as its job runs).  A half-open or slowloris peer stops
   pinning a connection slot forever. *)
let expire_clients t =
  if t.cfg.read_deadline_s > 0. then begin
    let now = Obs.Clock.now_s () in
    let owed =
      Hashtbl.fold
        (fun _ ws acc -> List.fold_left (fun a w -> w.wfd :: a) acc ws)
        t.waiters []
    in
    List.iter
      (fun fd ->
        if not (List.mem fd owed) then
          match Hashtbl.find_opt t.last_rx fd with
          | Some last when now -. last > t.cfg.read_deadline_s ->
              send t fd
                (error_json
                   (Printf.sprintf "read deadline (%.0fs idle) exceeded; closing"
                      t.cfg.read_deadline_s));
              logf t "dropped client: idle past read deadline";
              drop_client t fd
          | _ -> ())
      t.clients
  end

let drain_wakeup_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.ex.epipe_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let poll_io t timeout =
  expire_waiters t;
  expire_clients t;
  let fds = (t.ex.epipe_r :: t.listeners) @ t.clients in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.ex.epipe_r then drain_wakeup_pipe t
          else if List.mem fd t.listeners then begin
            match Unix.accept fd with
            | cfd, _ ->
                Hashtbl.replace t.last_rx cfd (Obs.Clock.now_s ());
                t.clients <- cfd :: t.clients
            | exception Unix.Unix_error _ -> ()
          end
          else if List.mem fd t.clients then read_chunk t fd)
        readable

(* --- worker domains ------------------------------------------------------ *)

let wake_loop ex =
  (* a full pipe already guarantees a pending wakeup *)
  try ignore (Unix.write ex.epipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let worker_loop ~store ~instances ~cancel ~quantum ex =
  let rec go () =
    Mutex.lock ex.emu;
    let t0 = Obs.Clock.now_s () in
    while Queue.is_empty ex.eq && not ex.estop do
      Condition.wait ex.econd ex.emu
    done;
    let idled = Obs.Clock.now_s () -. t0 in
    ex.eidle_s <- ex.eidle_s +. idled;
    if idled > 0. then Obs.Metrics.add m_idle (int_of_float (idled *. 1000.));
    if Queue.is_empty ex.eq then Mutex.unlock ex.emu (* estop: exit *)
    else begin
      let job = Queue.pop ex.eq in
      Mutex.unlock ex.emu;
      Runner.run_slice ~store ~instances ~cancel ~quantum job;
      Mutex.lock ex.emu;
      Queue.add job ex.edone;
      Mutex.unlock ex.emu;
      wake_loop ex;
      go ()
    end
  in
  go ()

let start_workers t =
  t.ex.edomains <-
    List.init (max 1 t.cfg.workers) (fun _ ->
        Domain.spawn (fun () ->
            worker_loop ~store:t.store ~instances:t.instances ~cancel:t.drain
              ~quantum:t.cfg.quantum t.ex))

let stop_workers t =
  Mutex.lock t.ex.emu;
  t.ex.estop <- true;
  Condition.broadcast t.ex.econd;
  Mutex.unlock t.ex.emu;
  List.iter Domain.join t.ex.edomains;
  t.ex.edomains <- []

(* --- lifecycle ---------------------------------------------------------- *)

(* Rebuild daemon state from the job store after a restart. *)
let recover t =
  let jobs, bad = Store.load_all t.store in
  List.iter (fun (file, m) -> logf t "store: skipping %s: %s" file m) bad;
  List.iter
    (fun (job : Job.t) ->
      (match (job.Job.state, Job.instance_of job.Job.spec) with
      | (Job.Running | Job.Suspended), Some _ ->
          (* a mutate job's suspended state was the held instance, which
             died with the daemon: restart it from scratch — first touch
             recreates the instance and its edit re-applies *)
          job.Job.state <- Job.Queued;
          job.Job.slices <- 0;
          job.Job.stages_done <- 0;
          persist t job
      | Job.Running, None ->
          (* died inside a slice: fall back to the last published
             checkpoint, or to a fresh start *)
          job.Job.state <-
            (if Store.has_checkpoint t.store job.Job.id then Job.Suspended
             else Job.Queued);
          job.Job.slices <- 0;
          persist t job
      | _ -> ());
      Hashtbl.replace t.jobs job.Job.id job)
    jobs;
  t.seq <- Store.next_seq jobs;
  (* Re-route every runnable job through the cache in submission order:
     a persisted entry serves it outright, pre-drain coalescing groups
     reform (the lowest-seq claimant of a key becomes primary again),
     the rest re-enter the run queue. *)
  List.iter
    (fun (job : Job.t) ->
      if runnable job then
        match try_cache t job with
        | `Run -> enqueue t job
        | `Parked -> ()
        | `Served ->
            logf t "cache: served recovered job %s" job.Job.id;
            on_terminal t job)
    jobs;
  (* Sweep checkpoints with no live owner: a crash can beat the removal
     at a terminal transition, and a manifest can be lost outright —
     either way the snapshot must not survive as an orphan that a later
     job with a recycled id could resume from. *)
  let keep id =
    match Hashtbl.find_opt t.jobs id with
    | Some job -> not (Job.terminal job)
    | None -> false
  in
  List.iter
    (fun id -> logf t "store: swept orphaned checkpoint %s" id)
    (Store.sweep_checkpoints t.store ~keep);
  (* Same sweep for the persistent result-cache segment: [Cache.create]
     has already reloaded (and capacity-trimmed) the segment, so any
     [.res] not resident now — cache disabled, persistence off, or a
     stale key schema — is an orphan that would otherwise live forever. *)
  List.iter
    (fun key -> logf t "store: swept orphaned result %s" key)
    (Store.sweep_results t.store ~keep:(fun key ->
         Cache.enabled t.cache && t.cfg.cache_persist && Cache.mem t.cache key));
  (* and temp files from writers the previous daemon's death interrupted *)
  List.iter
    (fun name -> logf t "store: swept stale temp %s" name)
    (Store.sweep_temps t.store);
  logf t "recovered %d job(s), %d runnable, %d unreadable" (List.length jobs)
    (Queue.length t.queue) (List.length bad)

let create cfg =
  let epipe_r, epipe_w = Unix.pipe () in
  Unix.set_nonblock epipe_r;
  Unix.set_nonblock epipe_w;
  let store = Store.open_ cfg.store_dir in
  let t =
    {
      cfg;
      store;
      instances = Runner.instances ();
      cache =
        Cache.create ~capacity:cfg.cache_capacity ~persist:cfg.cache_persist
          store;
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      seq = 1;
      drain = G.Cancel.create ();
      stop = false;
      waiters = Hashtbl.create 16;
      iversions = Hashtbl.create 8;
      cancel_req = Hashtbl.create 8;
      inflight = 0;
      ex =
        {
          emu = Mutex.create ();
          econd = Condition.create ();
          eq = Queue.create ();
          edone = Queue.create ();
          estop = false;
          eidle_s = 0.;
          epipe_r;
          epipe_w;
          edomains = [];
        };
      listeners = [];
      clients = [];
      bufs = Hashtbl.create 16;
      last_rx = Hashtbl.create 16;
      slices_total = 0;
      started_s = Obs.Clock.now_s ();
    }
  in
  recover t;
  start_workers t;
  t.listeners <-
    (listen_unix cfg.socket
    :: (match cfg.tcp_port with Some p -> [ listen_tcp p ] | None -> []));
  t

let request_drain t =
  t.stop <- true;
  G.Cancel.trip t.drain

let shutdown t =
  (* every runnable job is already durable (manifest + checkpoint); tell
     anyone still waiting, then tear the sockets down *)
  Hashtbl.iter
    (fun id ws ->
      let payload =
        match Hashtbl.find_opt t.jobs id with
        | Some job ->
            ok_fields
              [ ("draining", Json.Bool true); ("job", Job.summary_json job) ]
        | None -> error_json ("unknown job " ^ id)
      in
      List.iter (fun w -> send t w.wfd payload) ws)
    (Hashtbl.copy t.waiters);
  Hashtbl.reset t.waiters;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
  t.clients <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  (try Unix.close t.ex.epipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.ex.epipe_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
  logf t "drained: %d slice(s), %.0f ms worker idle" t.slices_total
    (t.ex.eidle_s *. 1000.)

(* Serve until drained (SIGTERM or the [drain] op).  Installs a SIGTERM
   handler for the duration and restores the previous one on exit. *)
let serve cfg =
  let t = create cfg in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_drain t))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigpipe prev_pipe)
    (fun () ->
      let rec loop () =
        process_completions t;
        if t.stop && t.inflight = 0 then begin
          stop_workers t;
          process_completions t;
          shutdown t
        end
        else begin
          if not t.stop then dispatch t;
          poll_io t 0.2;
          loop ()
        end
      in
      loop ())
