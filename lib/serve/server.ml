(* redspiderd: the job daemon.

   One single-threaded [select] event loop owns all sockets and all job
   bookkeeping; chase work happens in bounded synchronous *scheduling
   rounds* — up to [workers] runnable jobs each execute one quantum
   ([Runner.run_slice]) on the existing [Relational.Pool] fork-join
   domains, then control returns to the loop to accept clients, answer
   requests and pick the next round.  Preemption therefore needs no
   locks: between rounds no job is running, so every state transition
   happens on the loop thread, and a divergent chase can never hold a
   worker for more than one quantum while short jobs queue behind it.

   The wire protocol is newline-delimited JSON, one request per line,
   one response line per request, over a Unix socket (and optionally a
   loopback TCP socket).  Ops: ping, submit, status, wait, cancel,
   jobs, stats, drain.

   Durability: every lifecycle transition is published to the job store
   before the next round ([Store.save_manifest], atomic tmp+fsync+
   rename), and suspended chases keep their last stage-boundary snapshot
   as [<id>.ckpt].  On restart the daemon rescans the store: terminal
   jobs become history, queued/suspended jobs re-enter the run queue,
   and a job frozen as "running" (the daemon died inside a slice) is
   demoted to its last checkpoint or to a fresh start — the slice it
   died in was never published, so no torn state can be resumed.

   Drain (SIGTERM or the [drain] op) trips the shared cancel token:
   in-flight slices end [Cancelled] at the next stage boundary and are
   checkpointed as suspended; the loop then persists everything, answers
   pending waiters, closes the sockets and returns cleanly. *)

module G = Resilience.Governor

type config = {
  socket : string;           (* Unix socket path *)
  tcp_port : int option;     (* optional loopback TCP listener *)
  workers : int;             (* max concurrent slices per round *)
  quantum : Runner.quantum;  (* default preemption quantum *)
  store_dir : string;        (* job store directory *)
  log : bool;                (* chatter on stderr *)
}

let default_config ~socket ~store_dir =
  {
    socket;
    tcp_port = None;
    workers = 4;
    quantum = Runner.default_quantum;
    store_dir;
    log = false;
  }

type waiter = { wfd : Unix.file_descr; wdeadline : float option }

type t = {
  cfg : config;
  store : Store.t;
  instances : Runner.instances; (* daemon-held maintained chase instances *)
  jobs : (string, Job.t) Hashtbl.t;
  queue : string Queue.t;
  mutable seq : int;
  drain : G.Cancel.t;        (* shared by every slice's governor *)
  mutable stop : bool;
  waiters : (string, waiter list) Hashtbl.t;
  mutable listeners : Unix.file_descr list;
  mutable clients : Unix.file_descr list;
  bufs : (Unix.file_descr, Buffer.t) Hashtbl.t;
  mutable slices_total : int;
  mutable rounds_total : int;
  started_s : float;         (* monotonic *)
}

let logf t fmt =
  if t.cfg.log then Printf.eprintf ("redspiderd: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* --- plumbing ----------------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let drop_client t fd =
  t.clients <- List.filter (fun c -> c <> fd) t.clients;
  Hashtbl.remove t.bufs fd;
  (* forget any waits registered by this client *)
  Hashtbl.iter
    (fun id ws ->
      let ws' = List.filter (fun w -> w.wfd <> fd) ws in
      if List.length ws' <> List.length ws then Hashtbl.replace t.waiters id ws')
    (Hashtbl.copy t.waiters);
  try Unix.close fd with Unix.Unix_error _ -> ()

let send t fd (v : Json.t) =
  let line = Json.to_string v ^ "\n" in
  try write_all fd line 0 (String.length line)
  with Unix.Unix_error _ | Sys_error _ -> drop_client t fd

let error_json msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let ok_fields fields = Json.Obj (("ok", Json.Bool true) :: fields)

(* --- job bookkeeping ---------------------------------------------------- *)

let persist t job =
  match Store.save_manifest t.store job with
  | Ok () -> ()
  | Error m -> logf t "manifest %s: %s" job.Job.id m

let notify_waiters t (job : Job.t) =
  match Hashtbl.find_opt t.waiters job.Job.id with
  | None -> ()
  | Some ws ->
      Hashtbl.remove t.waiters job.Job.id;
      List.iter
        (fun w -> send t w.wfd (ok_fields [ ("job", Job.summary_json job) ]))
        ws

let enqueue t (job : Job.t) = Queue.add job.Job.id t.queue

(* Expire [wait] requests whose client-supplied timeout has passed. *)
let expire_waiters t =
  let now = Obs.Clock.now_s () in
  Hashtbl.iter
    (fun id ws ->
      let expired, live =
        List.partition
          (fun w -> match w.wdeadline with Some d -> now >= d | None -> false)
          ws
      in
      if expired <> [] then begin
        Hashtbl.replace t.waiters id live;
        let payload =
          match Hashtbl.find_opt t.jobs id with
          | Some job ->
              ok_fields
                [ ("timeout", Json.Bool true); ("job", Job.summary_json job) ]
          | None -> error_json ("unknown job " ^ id)
        in
        List.iter (fun w -> send t w.wfd payload) expired
      end)
    (Hashtbl.copy t.waiters)

(* --- scheduling rounds -------------------------------------------------- *)

let runnable (job : Job.t) =
  match job.Job.state with Job.Queued | Job.Suspended -> true | _ -> false

(* Run one round: up to [workers] runnable jobs, one quantum each, on the
   domain pool.  Returns true if any slice ran. *)
let run_round t =
  let batch = ref [] in
  let n_batch = ref 0 in
  (* Jobs driving the same held instance are serialized, in submission
     order: a mutate job is deferred while any earlier-submitted job on
     its instance is still alive (the [Maint] state is not shareable
     between concurrent slices, and edits must land in order), and at
     most one job per instance enters any round. *)
  let blocked (job : Job.t) name =
    Hashtbl.fold
      (fun _ (o : Job.t) acc ->
        acc
        || (o.Job.seq < job.Job.seq
           && (not (Job.terminal o))
           && Job.instance_of o.Job.spec = Some name))
      t.jobs false
  in
  let busy = Hashtbl.create 4 in
  let deferred = ref [] in
  while !n_batch < t.cfg.workers && not (Queue.is_empty t.queue) do
    let id = Queue.pop t.queue in
    match Hashtbl.find_opt t.jobs id with
    | Some job when runnable job -> (
        match Job.instance_of job.Job.spec with
        | Some name when Hashtbl.mem busy name || blocked job name ->
            deferred := id :: !deferred
        | inst ->
            Option.iter (fun name -> Hashtbl.replace busy name ()) inst;
            batch := job :: !batch;
            incr n_batch)
    | _ -> () (* cancelled or already terminal: drop the stale entry *)
  done;
  List.iter (fun id -> Queue.add id t.queue) (List.rev !deferred);
  match Array.of_list (List.rev !batch) with
  | [||] -> false
  | batch ->
      let n = Array.length batch in
      Array.iter
        (fun (j : Job.t) ->
          j.Job.state <- Job.Running;
          persist t j)
        batch;
      let quantum = t.cfg.quantum in
      ignore
        (Relational.Pool.run ~jobs:(min t.cfg.workers n) n (fun i ->
             Runner.run_slice ~store:t.store ~instances:t.instances
               ~cancel:t.drain ~quantum batch.(i)));
      t.slices_total <- t.slices_total + n;
      t.rounds_total <- t.rounds_total + 1;
      Array.iter
        (fun (j : Job.t) ->
          (match j.Job.state with
          | Job.Queued | Job.Suspended -> enqueue t j
          | Job.Running ->
              (* a slice must leave a verdict; treat silence as a fault *)
              j.Job.state <- Job.Faulted "slice returned without a verdict"
          | _ -> ());
          persist t j;
          if Job.terminal j then begin
            (* a terminal job never resumes: whatever its path here —
               done, faulted mid-slice, or cancelled — its suspend
               checkpoint must not outlive it *)
            Store.remove_checkpoint t.store j.Job.id;
            notify_waiters t j
          end)
        batch;
      logf t "round %d: %d slice(s), %d queued" t.rounds_total n
        (Queue.length t.queue);
      true

(* --- request handling --------------------------------------------------- *)

let counts_json t =
  let tally = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (j : Job.t) ->
      let k = Job.state_name j.Job.state in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    t.jobs;
  Json.Obj
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tally []))

let sorted_jobs t =
  List.sort
    (fun (a : Job.t) b -> compare a.Job.seq b.Job.seq)
    (Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [])

let handle_submit t req =
  let spec_json = Option.value ~default:req (Json.member "spec" req) in
  match Job.spec_of_json spec_json with
  | Error m -> error_json m
  | Ok spec -> (
      match Job.validate spec with
      | Error m -> error_json m
      | Ok () ->
          let quantum = Json.mem_int "quantum" req in
          let job = Job.make ~seq:t.seq ?quantum spec in
          t.seq <- t.seq + 1;
          Hashtbl.replace t.jobs job.Job.id job;
          persist t job;
          enqueue t job;
          ok_fields
            [
              ("id", Json.String job.Job.id);
              ("kind", Json.String (Job.kind job.Job.spec));
              ("state", Json.String (Job.state_name job.Job.state));
            ])

let handle_cancel t req =
  match Json.mem_str "id" req with
  | None -> error_json "missing id"
  | Some id -> (
      match Hashtbl.find_opt t.jobs id with
      | None -> error_json ("unknown job " ^ id)
      | Some job ->
          if not (Job.terminal job) then begin
            job.Job.state <- Job.Cancelled;
            Store.remove_checkpoint t.store id;
            persist t job;
            notify_waiters t job
          end;
          ok_fields [ ("job", Job.summary_json job) ])

(* Returns [None] when the request registered a waiter (no reply yet). *)
let handle_request t fd line =
  match Json.parse line with
  | Error m -> Some (error_json ("bad request: " ^ m))
  | Ok req -> (
      match Json.mem_str "op" req with
      | None -> Some (error_json "missing op")
      | Some "ping" ->
          Some
            (ok_fields
               [
                 ("pid", Json.Int (Unix.getpid ()));
                 ( "uptime_s",
                   Json.Float (Obs.Clock.now_s () -. t.started_s) );
               ])
      | Some "submit" -> Some (handle_submit t req)
      | Some "status" -> (
          match Json.mem_str "id" req with
          | None -> Some (error_json "missing id")
          | Some id -> (
              match Hashtbl.find_opt t.jobs id with
              | None -> Some (error_json ("unknown job " ^ id))
              | Some job -> Some (ok_fields [ ("job", Job.summary_json job) ])))
      | Some "wait" -> (
          match Json.mem_str "id" req with
          | None -> Some (error_json "missing id")
          | Some id -> (
              match Hashtbl.find_opt t.jobs id with
              | None -> Some (error_json ("unknown job " ^ id))
              | Some job ->
                  if Job.terminal job then
                    Some (ok_fields [ ("job", Job.summary_json job) ])
                  else begin
                    let wdeadline =
                      Option.map
                        (fun s -> Obs.Clock.now_s () +. s)
                        (Json.mem_float "timeout_s" req)
                    in
                    let ws =
                      Option.value ~default:[] (Hashtbl.find_opt t.waiters id)
                    in
                    Hashtbl.replace t.waiters id ({ wfd = fd; wdeadline } :: ws);
                    None
                  end))
      | Some "jobs" ->
          Some
            (ok_fields
               [ ("jobs", Json.List (List.map Job.summary_json (sorted_jobs t))) ])
      | Some "cancel" -> Some (handle_cancel t req)
      | Some "stats" ->
          Some
            (ok_fields
               [
                 ("uptime_s", Json.Float (Obs.Clock.now_s () -. t.started_s));
                 ("rounds", Json.Int t.rounds_total);
                 ("slices", Json.Int t.slices_total);
                 ("queued", Json.Int (Queue.length t.queue));
                 ("counts", counts_json t);
                 ( "metrics",
                   Json.Obj
                     (List.map
                        (fun (k, v) -> (k, Json.Int v))
                        (Obs.Metrics.snapshot ())) );
                 ("jobs", Json.List (List.map Job.summary_json (sorted_jobs t)));
               ])
      | Some "drain" ->
          t.stop <- true;
          G.Cancel.trip t.drain;
          Some (ok_fields [ ("draining", Json.Bool true) ])
      | Some op -> Some (error_json ("unknown op " ^ op)))

(* --- socket plumbing ---------------------------------------------------- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let read_chunk t fd =
  let buf = Bytes.create 4096 in
  match Unix.read fd buf 0 4096 with
  | 0 | (exception Unix.Unix_error _) -> drop_client t fd
  | n ->
      let b =
        match Hashtbl.find_opt t.bufs fd with
        | Some b -> b
        | None ->
            let b = Buffer.create 256 in
            Hashtbl.replace t.bufs fd b;
            b
      in
      Buffer.add_subbytes b buf 0 n;
      (* dispatch every complete line *)
      let data = Buffer.contents b in
      let rec lines from =
        match String.index_from_opt data from '\n' with
        | None ->
            Buffer.clear b;
            Buffer.add_substring b data from (String.length data - from)
        | Some nl ->
            let line = String.sub data from (nl - from) in
            if String.trim line <> "" then begin
              match handle_request t fd line with
              | Some reply -> send t fd reply
              | None -> ()
            end;
            lines (nl + 1)
      in
      lines 0

let poll_io t timeout =
  expire_waiters t;
  let fds = t.listeners @ t.clients in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
      List.iter
        (fun fd ->
          if List.mem fd t.listeners then begin
            match Unix.accept fd with
            | cfd, _ -> t.clients <- cfd :: t.clients
            | exception Unix.Unix_error _ -> ()
          end
          else read_chunk t fd)
        readable

(* --- lifecycle ---------------------------------------------------------- *)

(* Rebuild daemon state from the job store after a restart. *)
let recover t =
  let jobs, bad = Store.load_all t.store in
  List.iter (fun (file, m) -> logf t "store: skipping %s: %s" file m) bad;
  List.iter
    (fun (job : Job.t) ->
      (match (job.Job.state, Job.instance_of job.Job.spec) with
      | (Job.Running | Job.Suspended), Some _ ->
          (* a mutate job's suspended state was the held instance, which
             died with the daemon: restart it from scratch — first touch
             recreates the instance and its edit re-applies *)
          job.Job.state <- Job.Queued;
          job.Job.slices <- 0;
          job.Job.stages_done <- 0;
          persist t job
      | Job.Running, None ->
          (* died inside a slice: fall back to the last published
             checkpoint, or to a fresh start *)
          job.Job.state <-
            (if Store.has_checkpoint t.store job.Job.id then Job.Suspended
             else Job.Queued);
          job.Job.slices <- 0;
          persist t job
      | _ -> ());
      Hashtbl.replace t.jobs job.Job.id job;
      if runnable job then enqueue t job)
    jobs;
  t.seq <- Store.next_seq jobs;
  (* Sweep checkpoints with no live owner: a crash can beat the removal
     at a terminal transition, and a manifest can be lost outright —
     either way the snapshot must not survive as an orphan that a later
     job with a recycled id could resume from. *)
  let keep id =
    match Hashtbl.find_opt t.jobs id with
    | Some job -> not (Job.terminal job)
    | None -> false
  in
  List.iter
    (fun id -> logf t "store: swept orphaned checkpoint %s" id)
    (Store.sweep_checkpoints t.store ~keep);
  logf t "recovered %d job(s), %d runnable, %d unreadable" (List.length jobs)
    (Queue.length t.queue) (List.length bad)

let create cfg =
  let t =
    {
      cfg;
      store = Store.open_ cfg.store_dir;
      instances = Runner.instances ();
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      seq = 1;
      drain = G.Cancel.create ();
      stop = false;
      waiters = Hashtbl.create 16;
      listeners = [];
      clients = [];
      bufs = Hashtbl.create 16;
      slices_total = 0;
      rounds_total = 0;
      started_s = Obs.Clock.now_s ();
    }
  in
  recover t;
  t.listeners <-
    (listen_unix cfg.socket
    :: (match cfg.tcp_port with Some p -> [ listen_tcp p ] | None -> []));
  t

let request_drain t =
  t.stop <- true;
  G.Cancel.trip t.drain

let shutdown t =
  (* every runnable job is already durable (manifest + checkpoint); tell
     anyone still waiting, then tear the sockets down *)
  Hashtbl.iter
    (fun id ws ->
      let payload =
        match Hashtbl.find_opt t.jobs id with
        | Some job ->
            ok_fields
              [ ("draining", Json.Bool true); ("job", Job.summary_json job) ]
        | None -> error_json ("unknown job " ^ id)
      in
      List.iter (fun w -> send t w.wfd payload) ws)
    (Hashtbl.copy t.waiters);
  Hashtbl.reset t.waiters;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
  t.clients <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
  logf t "drained: %d round(s), %d slice(s)" t.rounds_total t.slices_total

(* Serve until drained (SIGTERM or the [drain] op).  Installs a SIGTERM
   handler for the duration and restores the previous one on exit. *)
let serve cfg =
  let t = create cfg in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_drain t))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigpipe prev_pipe)
    (fun () ->
      let rec loop () =
        if t.stop then shutdown t
        else begin
          let ran = run_round t in
          let timeout =
            if ran || not (Queue.is_empty t.queue) then 0. else 0.2
          in
          poll_io t timeout;
          loop ()
        end
      in
      loop ())
