(* Jobs: what the daemon runs.

   A job is a self-contained work description decoded from the wire (and
   persisted verbatim in its manifest), plus the mutable lifecycle state
   the scheduler drives:

     queued -> running -> done | faulted | cancelled
                  \-> suspended -> (requeued) running -> ...

   [Suspended] means the job exhausted its preemption quantum: its
   engine snapshot sits in the job store as a checkpoint and the job
   goes back to the run queue, so a divergent chase (which the source
   paper guarantees exists) never monopolizes a worker.  Only chase jobs
   suspend — the other classes are bounded by their own budgets and run
   to completion within a slice.

   Everything on the wire uses the PR 5 outcome taxonomy
   ([Governor.pp_outcome] strings and the documented exit codes). *)

type engine = Tgd.Chase.engine

(* One fact edit of a mutate job.  Elements are referenced by the
   structure's integer ids; a negative id names a fresh element, to be
   allocated on first use and shared across the whole edit script (so
   [{add; rel="E"; args=[4; -1]}] appends an edge into a brand-new
   vertex). *)
type edit_op = { add : bool; rel : string; args : int list }

type spec =
  | Chase of {
      views : (string * string) list; (* (name, rule) as submitted *)
      q0 : string;
      max_stages : int;
      engine : engine;
    }
  | Determinacy of {
      views : (string * string) list;
      q0 : string;
      max_stages : int;
      engine : engine;
    }
  | Worm of { machine : string; steps : int }
  | Audit of {
      seed : int;
      cases : int;
      max_stages : int;
      family : string; (* an Oracle.Shard family name; "audit" default *)
      from_case : int; (* shard offset: cases [from_case, from_case+cases) *)
    }
  | Mutate of {
      instance : string; (* daemon-held maintained instance, by name *)
      views : (string * string) list; (* its definition, used on first touch *)
      q0 : string;
      ops : edit_op list; (* the edit script, applied as one edit *)
      max_stages : int;
      engine : engine;
    }

type result_ = {
  outcome : string;  (* Governor.pp_outcome string, or a class verdict *)
  exit_code : int;   (* the PR 5 exit taxonomy for this outcome *)
  digest : string;   (* canonical digest of the produced artifact; "" if n/a *)
  detail : (string * Json.t) list; (* class-specific numbers *)
}

type state =
  | Queued
  | Running
  | Suspended
  | Done of result_
  | Faulted of string
  | Cancelled

type t = {
  id : string;
  seq : int;
  spec : spec;
  quantum_override : int option; (* per-job stage quantum, if requested *)
  submitted_wall_s : float;      (* wall clock, epoch field only *)
  mutable state : state;
  mutable slices : int;          (* quanta executed so far *)
  mutable stages_done : int;     (* chase: last completed (absolute) stage *)
  mutable wall_s : float;        (* total on-worker wall clock *)
  mutable applications : int;
  mutable considered : int;
  mutable ckey : string option;  (* resolved cache key; runtime-only, not
                                    persisted — recovery re-derives it *)
}

let id_of_seq seq = Printf.sprintf "j%06d" seq

let make ~seq ?quantum spec =
  {
    id = id_of_seq seq;
    seq;
    spec;
    quantum_override = quantum;
    submitted_wall_s = Obs.Clock.wall_s ();
    state = Queued;
    slices = 0;
    stages_done = 0;
    wall_s = 0.;
    applications = 0;
    considered = 0;
    ckey = None;
  }

let kind = function
  | Chase _ -> "chase"
  | Determinacy _ -> "determinacy"
  | Worm _ -> "worm"
  | Audit _ -> "audit"
  | Mutate _ -> "mutate"

(* The daemon-held instance a job drives, if any: the scheduler never
   batches two jobs of the same instance into one round. *)
let instance_of = function
  | Mutate { instance; _ } -> Some instance
  | Chase _ | Determinacy _ | Worm _ | Audit _ -> None

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Suspended -> "suspended"
  | Done _ -> "done"
  | Faulted _ -> "faulted"
  | Cancelled -> "cancelled"

(* A job in a terminal state will never run again. *)
let terminal j =
  match j.state with
  | Done _ | Faulted _ | Cancelled -> true
  | Queued | Running | Suspended -> false

(* --- engines ----------------------------------------------------------- *)

let engine_name : engine -> string = function
  | `Stage -> "stage"
  | `Seminaive -> "seminaive"
  | `Oblivious -> "oblivious"
  | `Par -> "par"

let engine_of_name : string -> engine option = function
  | "stage" -> Some `Stage
  | "seminaive" -> Some `Seminaive
  | "oblivious" -> Some `Oblivious
  | "par" -> Some `Par
  | _ -> None

(* --- outcome strings --------------------------------------------------- *)

let outcome_string (o : Resilience.Governor.outcome) =
  Format.asprintf "%a" Resilience.Governor.pp_outcome o

let result_of_outcome ?(digest = "") ?(detail = []) o =
  {
    outcome = outcome_string o;
    exit_code = Resilience.Governor.exit_code o;
    digest;
    detail;
  }

(* --- view parsing ------------------------------------------------------ *)

(* Views and q0 are validated at submit time, so a malformed rule is a
   synchronous error response instead of a faulted job. *)
let parse_rules views q0 =
  let ( let* ) = Result.bind in
  let rec parse_views acc = function
    | [] -> Ok (List.rev acc)
    | (_, rule) :: rest -> (
        match Cq.Parse.named_query rule with
        | Ok nq -> parse_views (nq :: acc) rest
        | Error m -> Error (Printf.sprintf "bad view %S: %s" rule m))
  in
  let* views = parse_views [] views in
  match Cq.Parse.named_query q0 with
  | Ok (_, q0) -> Ok (views, q0)
  | Error m -> Error (Printf.sprintf "bad q0 %S: %s" q0 m)

let validate spec =
  match spec with
  | Chase { views; q0; max_stages; _ }
  | Determinacy { views; q0; max_stages; _ } ->
      if max_stages <= 0 then Error "max_stages must be positive"
      else Result.map (fun _ -> ()) (parse_rules views q0)
  | Worm { machine; steps } ->
      if steps <= 0 then Error "steps must be positive"
      else if Option.is_none (List.assoc_opt machine Zoo_table.machines) then
        Error
          (Printf.sprintf "unknown machine %s (try: %s)" machine
             (String.concat ", " (List.map fst Zoo_table.machines)))
      else Ok ()
  | Audit { cases; family; from_case; _ } ->
      if cases <= 0 then Error "cases must be positive"
      else if from_case < 0 then Error "from_case must be non-negative"
      else if family = "faults" then
        (* the faults oracle owns the process-global failpoint registry;
           running it inside a multi-worker daemon would perturb every
           concurrent par-engine slice *)
        Error "faults shards cannot run as daemon jobs"
      else if Option.is_none (Oracle.Shard.family_of_name family) then
        Error (Printf.sprintf "unknown oracle family %s" family)
      else Ok ()
  | Mutate { instance; views; q0; ops; max_stages; engine } ->
      if instance = "" then Error "instance must be named"
      else if max_stages <= 0 then Error "max_stages must be positive"
      else if engine <> `Seminaive && engine <> `Par then
        Error "mutate jobs need a maintained engine (seminaive/par)"
      else if List.exists (fun o -> o.rel = "") ops then
        Error "edit op with an empty relation name"
      else Result.map (fun _ -> ()) (parse_rules views q0)

(* --- structure digest -------------------------------------------------- *)

(* Canonical digest of a chased structure: the live journal (order
   included, symbols by content, elements by id) plus the element count —
   the witness the bit-identity tests compare across preempted vs
   uninterrupted runs, across engines, and now across cache paths.  The
   digest is history-sensitive on purpose: a retract-then-re-add leaves
   a different journal than never touching the fact, which is exactly
   what distinguishes a maintained instance from a re-chase.

   Streamed: [Structure.digest_hex] feeds the journal suffix since its
   last call straight into the 128-bit mixer — no O(journal) text render
   per digest (the old witness built the whole journal as a string and
   MD5'd it on every job completion). *)
let structure_digest d = Relational.Structure.digest_hex d

(* --- cache classification ---------------------------------------------- *)

(* How a spec may be served from the result cache.

   [Pure k]: the result is a function of the spec alone — the key [k]
   canonicalizes the inputs (ruleset digest + canonical-instance digest
   for chases, machine/steps for worms, parameters for audits).  The
   engine is deliberately NOT part of the key: the engines are proven
   bit-identical (same structures, same fresh ids, same digest), so a
   [`Par] submission may legitimately be answered by a cached
   [`Seminaive] result.  [quantum_override] is excluded for the same
   reason — preempted ≡ uninterrupted is an invariant, not a parameter.

   [Instance_read]: a mutate job with an empty edit script reads a
   daemon-held instance; its key is only complete once the scheduler
   appends the instance's predicted version, and the entry must die with
   the version (see [Server] — such entries are never persisted).

   [Uncacheable]: a mutate with edits changes daemon state; running it
   twice is two distinct edits. *)
type cache_class =
  | Uncacheable
  | Pure of string
  | Instance_read of { instance : string; partial : string }

let chase_key ~tag views q0 max_stages =
  match parse_rules views q0 with
  | Error _ -> None (* validation rejects it before it gets a key *)
  | Ok (named, q0) ->
      let deps = Tgd.Dep.t_q named in
      let canon, _ = Tgd.Greenred.green_canonical q0 in
      Some
        (Relational.Digest128.of_strings
           [
             tag;
             Tgd.Dep.digest_hex deps;
             Relational.Structure.digest_hex canon;
             string_of_int max_stages;
           ])

let cache_class = function
  | Chase { views; q0; max_stages; _ } -> (
      match chase_key ~tag:"chase" views q0 max_stages with
      | Some k -> Pure k
      | None -> Uncacheable)
  | Determinacy { views; q0; max_stages; _ } -> (
      match chase_key ~tag:"determinacy" views q0 max_stages with
      | Some k -> Pure k
      | None -> Uncacheable)
  | Worm { machine; steps } ->
      Pure
        (Relational.Digest128.of_strings
           [ "worm"; machine; string_of_int steps ])
  | Audit { seed; cases; max_stages; family; from_case } ->
      Pure
        (Relational.Digest128.of_strings
           [
             "audit";
             family;
             string_of_int seed;
             string_of_int cases;
             string_of_int max_stages;
             string_of_int from_case;
           ])
  | Mutate { ops = _ :: _; _ } -> Uncacheable
  | Mutate { instance; views; q0; ops = []; max_stages; _ } -> (
      match chase_key ~tag:"mutate-read" views q0 max_stages with
      | Some partial -> Instance_read { instance; partial }
      | None -> Uncacheable)

(* --- wire encoding ----------------------------------------------------- *)

let spec_to_json spec =
  let views_json vs =
    Json.List
      (List.map
         (fun (n, r) -> Json.Obj [ ("name", Json.String n); ("rule", Json.String r) ])
         vs)
  in
  match spec with
  | Chase { views; q0; max_stages; engine } ->
      Json.Obj
        [
          ("kind", Json.String "chase");
          ("views", views_json views);
          ("q0", Json.String q0);
          ("max_stages", Json.Int max_stages);
          ("engine", Json.String (engine_name engine));
        ]
  | Determinacy { views; q0; max_stages; engine } ->
      Json.Obj
        [
          ("kind", Json.String "determinacy");
          ("views", views_json views);
          ("q0", Json.String q0);
          ("max_stages", Json.Int max_stages);
          ("engine", Json.String (engine_name engine));
        ]
  | Worm { machine; steps } ->
      Json.Obj
        [
          ("kind", Json.String "worm");
          ("machine", Json.String machine);
          ("steps", Json.Int steps);
        ]
  | Audit { seed; cases; max_stages; family; from_case } ->
      Json.Obj
        [
          ("kind", Json.String "audit");
          ("seed", Json.Int seed);
          ("cases", Json.Int cases);
          ("max_stages", Json.Int max_stages);
          ("family", Json.String family);
          ("from_case", Json.Int from_case);
        ]
  | Mutate { instance; views; q0; ops; max_stages; engine } ->
      Json.Obj
        [
          ("kind", Json.String "mutate");
          ("instance", Json.String instance);
          ("views", views_json views);
          ("q0", Json.String q0);
          ( "ops",
            Json.List
              (List.map
                 (fun o ->
                   Json.Obj
                     [
                       ("op", Json.String (if o.add then "insert" else "retract"));
                       ("rel", Json.String o.rel);
                       ("args", Json.List (List.map (fun a -> Json.Int a) o.args));
                     ])
                 ops) );
          ("max_stages", Json.Int max_stages);
          ("engine", Json.String (engine_name engine));
        ]

let spec_of_json j =
  let ( let* ) = Result.bind in
  let req what = function Some v -> Ok v | None -> Error ("missing " ^ what) in
  let views () =
    match Json.mem_list "views" j with
    | None -> Error "missing views"
    | Some vs ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | v :: rest -> (
              match (Json.mem_str "name" v, Json.mem_str "rule" v) with
              | Some n, Some r -> go ((n, r) :: acc) rest
              | _ -> (
                  (* also accept a bare rule string; the name is parsed
                     out of the rule head anyway *)
                  match Json.to_str v with
                  | Some r -> go (("", r) :: acc) rest
                  | None -> Error "bad view entry"))
        in
        go [] vs
  in
  let engine () =
    match Json.mem_str "engine" j with
    | None -> Ok `Seminaive
    | Some s -> (
        match engine_of_name s with
        | Some e -> Ok e
        | None -> Error (Printf.sprintf "unknown engine %s" s))
  in
  let* k = req "kind" (Json.mem_str "kind" j) in
  match k with
  | "chase" ->
      let* views = views () in
      let* q0 = req "q0" (Json.mem_str "q0" j) in
      let* engine = engine () in
      let max_stages = Option.value (Json.mem_int "max_stages" j) ~default:64 in
      Ok (Chase { views; q0; max_stages; engine })
  | "determinacy" ->
      let* views = views () in
      let* q0 = req "q0" (Json.mem_str "q0" j) in
      let* engine = engine () in
      let max_stages = Option.value (Json.mem_int "max_stages" j) ~default:32 in
      Ok (Determinacy { views; q0; max_stages; engine })
  | "worm" ->
      let* machine = req "machine" (Json.mem_str "machine" j) in
      let steps = Option.value (Json.mem_int "steps" j) ~default:200 in
      Ok (Worm { machine; steps })
  | "audit" ->
      let seed = Option.value (Json.mem_int "seed" j) ~default:42 in
      let cases = Option.value (Json.mem_int "cases" j) ~default:50 in
      let max_stages = Option.value (Json.mem_int "max_stages" j) ~default:4 in
      let family = Option.value (Json.mem_str "family" j) ~default:"audit" in
      let from_case = Option.value (Json.mem_int "from_case" j) ~default:0 in
      Ok (Audit { seed; cases; max_stages; family; from_case })
  | "mutate" ->
      let* instance = req "instance" (Json.mem_str "instance" j) in
      let* views = views () in
      let* q0 = req "q0" (Json.mem_str "q0" j) in
      let* engine = engine () in
      let* ops =
        match Json.mem_list "ops" j with
        | None -> Error "missing ops"
        | Some os ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | o :: rest -> (
                  let args =
                    Option.bind (Json.mem_list "args" o) (fun vs ->
                        let is = List.filter_map Json.to_int vs in
                        if List.length is = List.length vs then Some is
                        else None)
                  in
                  match (Json.mem_str "op" o, Json.mem_str "rel" o, args) with
                  | Some "insert", Some rel, Some args ->
                      go ({ add = true; rel; args } :: acc) rest
                  | Some "retract", Some rel, Some args ->
                      go ({ add = false; rel; args } :: acc) rest
                  | _ -> Error "bad edit op (want op/rel/args)")
            in
            go [] os
      in
      let max_stages = Option.value (Json.mem_int "max_stages" j) ~default:64 in
      Ok (Mutate { instance; views; q0; ops; max_stages; engine })
  | k -> Error (Printf.sprintf "unknown job kind %s" k)

let result_to_json r =
  Json.Obj
    ([
       ("outcome", Json.String r.outcome);
       ("exit_code", Json.Int r.exit_code);
       ("digest", Json.String r.digest);
     ]
    @ r.detail)

let result_of_json j =
  let outcome = Option.value (Json.mem_str "outcome" j) ~default:"?" in
  let exit_code = Option.value (Json.mem_int "exit_code" j) ~default:1 in
  let digest = Option.value (Json.mem_str "digest" j) ~default:"" in
  let detail =
    match j with
    | Json.Obj kvs ->
        List.filter
          (fun (k, _) -> k <> "outcome" && k <> "exit_code" && k <> "digest")
          kvs
    | _ -> []
  in
  { outcome; exit_code; digest; detail }

(* The job summary shown by status/jobs responses. *)
let summary_json j =
  Json.Obj
    ([
       ("id", Json.String j.id);
       ("kind", Json.String (kind j.spec));
       ("state", Json.String (state_name j.state));
       ("slices", Json.Int j.slices);
       ("stages_done", Json.Int j.stages_done);
       ("wall_s", Json.Float j.wall_s);
       ("applications", Json.Int j.applications);
       ("triggers_considered", Json.Int j.considered);
     ]
    @ (match j.state with
      | Done r -> [ ("result", result_to_json r) ]
      | Faulted m -> [ ("error", Json.String m) ]
      | _ -> []))

(* --- manifest (de)serialization ---------------------------------------- *)

let manifest_json j =
  Json.Obj
    [
      ("id", Json.String j.id);
      ("seq", Json.Int j.seq);
      ("spec", spec_to_json j.spec);
      ( "quantum",
        match j.quantum_override with None -> Json.Null | Some q -> Json.Int q );
      ("submitted_wall_s", Json.Float j.submitted_wall_s);
      ("state", Json.String (state_name j.state));
      ( "result",
        match j.state with Done r -> result_to_json r | _ -> Json.Null );
      ( "fault",
        match j.state with Faulted m -> Json.String m | _ -> Json.Null );
      ("slices", Json.Int j.slices);
      ("stages_done", Json.Int j.stages_done);
      ("wall_s", Json.Float j.wall_s);
      ("applications", Json.Int j.applications);
      ("considered", Json.Int j.considered);
    ]

let manifest_of_json j =
  let ( let* ) = Result.bind in
  let* id =
    match Json.mem_str "id" j with Some v -> Ok v | None -> Error "missing id"
  in
  let* seq =
    match Json.mem_int "seq" j with Some v -> Ok v | None -> Error "missing seq"
  in
  let* spec =
    match Json.member "spec" j with
    | Some s -> spec_of_json s
    | None -> Error "missing spec"
  in
  let state_s = Option.value (Json.mem_str "state" j) ~default:"queued" in
  let* state =
    match state_s with
    | "queued" -> Ok Queued
    (* a manifest frozen mid-run means the daemon crashed inside a
       slice: the slice's work is lost, but the last published
       checkpoint (if any) is intact — recover as suspended/queued *)
    | "running" -> Ok Running
    | "suspended" -> Ok Suspended
    | "done" -> (
        match Json.member "result" j with
        | Some r -> Ok (Done (result_of_json r))
        | None -> Error "done manifest without result")
    | "faulted" ->
        Ok (Faulted (Option.value (Json.mem_str "fault" j) ~default:"?"))
    | "cancelled" -> Ok Cancelled
    | s -> Error (Printf.sprintf "unknown state %s" s)
  in
  Ok
    {
      id;
      seq;
      spec;
      quantum_override = Json.mem_int "quantum" j;
      submitted_wall_s =
        Option.value (Json.mem_float "submitted_wall_s" j) ~default:0.;
      state;
      slices = Option.value (Json.mem_int "slices" j) ~default:0;
      stages_done = Option.value (Json.mem_int "stages_done" j) ~default:0;
      wall_s = Option.value (Json.mem_float "wall_s" j) ~default:0.;
      applications = Option.value (Json.mem_int "applications" j) ~default:0;
      considered = Option.value (Json.mem_int "considered" j) ~default:0;
      ckey = None;
    }
