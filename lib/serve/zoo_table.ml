(* The zoo machines servable as worm jobs, by wire name.  Mirrors the
   CLI's table in bin/redspider.ml; Turing-machine entries are compiled
   on first use and cached, so repeated worm jobs do not recompile.

   The compile cache is shared by every worker domain of the continuous
   scheduler — two worm jobs can race the same first-use compile — so
   the table is guarded by a mutex.  A lost race costs one redundant
   compile (both produce the same oracle; the later [replace] wins),
   never a torn Hashtbl. *)

let machines =
  [
    ("creeper", `M Rainworm.Zoo.eternal_creeper);
    ("stillborn", `M Rainworm.Zoo.stillborn);
    ("halt-now", `Tm Rainworm.Zoo.tm_halt_now);
    ("write-3", `Tm (Rainworm.Zoo.tm_write_k 3));
    ("right-forever", `Tm Rainworm.Zoo.tm_right_forever);
    ("zigzag", `Tm Rainworm.Zoo.tm_zigzag);
    ("bouncer-2", `Tm (Rainworm.Zoo.tm_bouncer 2));
  ]

let oracles : (string, Rainworm.Machine.oracle) Hashtbl.t = Hashtbl.create 8
let oracles_mu = Mutex.create ()

let oracle name =
  let cached =
    Mutex.lock oracles_mu;
    let o = Hashtbl.find_opt oracles name in
    Mutex.unlock oracles_mu;
    o
  in
  match cached with
  | Some o -> Some o
  | None ->
      Option.map
        (fun m ->
          (* compile outside the lock: oracle construction is pure and
             the lock only has to protect the table itself *)
          let o =
            match m with
            | `M m -> Rainworm.Machine.oracle m
            | `Tm tm -> Rainworm.Tm_compiler.oracle tm
          in
          Mutex.lock oracles_mu;
          Hashtbl.replace oracles name o;
          Mutex.unlock oracles_mu;
          o)
        (List.assoc_opt name machines)
