(* The zoo machines servable as worm jobs, by wire name.  Mirrors the
   CLI's table in bin/redspider.ml; Turing-machine entries are compiled
   on first use and cached, so repeated worm jobs do not recompile. *)

let machines =
  [
    ("creeper", `M Rainworm.Zoo.eternal_creeper);
    ("stillborn", `M Rainworm.Zoo.stillborn);
    ("halt-now", `Tm Rainworm.Zoo.tm_halt_now);
    ("write-3", `Tm (Rainworm.Zoo.tm_write_k 3));
    ("right-forever", `Tm Rainworm.Zoo.tm_right_forever);
    ("zigzag", `Tm Rainworm.Zoo.tm_zigzag);
    ("bouncer-2", `Tm (Rainworm.Zoo.tm_bouncer 2));
  ]

let oracles : (string, Rainworm.Machine.oracle) Hashtbl.t = Hashtbl.create 8

let oracle name =
  match Hashtbl.find_opt oracles name with
  | Some o -> Some o
  | None ->
      Option.map
        (fun m ->
          let o =
            match m with
            | `M m -> Rainworm.Machine.oracle m
            | `Tm tm -> Rainworm.Tm_compiler.oracle tm
          in
          Hashtbl.replace oracles name o;
          o)
        (List.assoc_opt name machines)
