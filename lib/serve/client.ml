(* The thin client side of the wire protocol: connect, write one JSON
   line, read one JSON line back.  Blocking by design — callers that
   want concurrency open several connections (the daemon multiplexes
   them with [select]). *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?tcp ~socket () =
  match
    let fd =
      match tcp with
      | Some (host, port) ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> raise Not_found
              | h -> h.Unix.h_addr_list.(0))
          in
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          fd
      | None ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          fd
    in
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with
  | conn -> Ok conn
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  | exception Not_found -> Error "connect: host not found"

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let request conn (req : Json.t) =
  match
    output_string conn.oc (Json.to_string req);
    output_char conn.oc '\n';
    flush conn.oc;
    input_line conn.ic
  with
  | line -> Json.parse line
  | exception End_of_file -> Error "daemon closed the connection"
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* A request that must come back [ok: true]; flattens protocol and
   daemon errors into one [Error _]. *)
let request_ok conn req =
  match request conn req with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.mem_bool "ok" reply with
      | Some true -> Ok reply
      | _ ->
          Error
            (Option.value ~default:"daemon refused the request"
               (Json.mem_str "error" reply)))

(* --- convenience ops ---------------------------------------------------- *)

let op name fields = Json.Obj (("op", Json.String name) :: fields)

let ping conn = request_ok conn (op "ping" [])

let submit conn ?quantum spec =
  let fields = [ ("spec", Job.spec_to_json spec) ] in
  let fields =
    match quantum with
    | Some q -> ("quantum", Json.Int q) :: fields
    | None -> fields
  in
  Result.bind (request_ok conn (op "submit" fields)) (fun reply ->
      match Json.mem_str "id" reply with
      | Some id -> Ok id
      | None -> Error "submit reply carried no id")

(* Pipelined submission: write every submit line, flush once, then read
   the replies back in order.  One round trip for the whole batch, which
   is what makes duplicate-heavy traffic land inside one coalescing
   window instead of arriving a result apart. *)
let submit_many conn ?quantum specs =
  match
    List.iter
      (fun spec ->
        let fields = [ ("spec", Job.spec_to_json spec) ] in
        let fields =
          match quantum with
          | Some q -> ("quantum", Json.Int q) :: fields
          | None -> fields
        in
        output_string conn.oc (Json.to_string (op "submit" fields));
        output_char conn.oc '\n')
      specs;
    flush conn.oc;
    List.map (fun _ -> input_line conn.ic) specs
  with
  | exception End_of_file -> Error "daemon closed the connection"
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | lines ->
      let rec decode acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match Json.parse line with
            | Error _ as e -> e
            | Ok reply -> (
                match (Json.mem_bool "ok" reply, Json.mem_str "id" reply) with
                | Some true, Some id -> decode (id :: acc) rest
                | _ ->
                    Error
                      (Option.value ~default:"daemon refused a submit"
                         (Json.mem_str "error" reply))))
      in
      decode [] lines

let status conn id = request_ok conn (op "status" [ ("id", Json.String id) ])

let wait conn ?timeout_s id =
  let fields = [ ("id", Json.String id) ] in
  let fields =
    match timeout_s with
    | Some s -> ("timeout_s", Json.Float s) :: fields
    | None -> fields
  in
  request_ok conn (op "wait" fields)

let cancel conn id = request_ok conn (op "cancel" [ ("id", Json.String id) ])
let jobs conn = request_ok conn (op "jobs" [])
let stats conn = request_ok conn (op "stats" [])
let drain conn = request_ok conn (op "drain" [])

(* The job object of a status/wait reply. *)
let job_of_reply reply =
  match Json.member "job" reply with
  | Some j -> Ok j
  | None -> Error "reply carried no job"

(* Block until [id] is terminal, re-issuing bounded waits so a slow job
   does not hold one socket read forever. *)
let rec wait_terminal ?(poll_s = 5.) conn id =
  match wait conn ~timeout_s:poll_s id with
  | Error _ as e -> e
  | Ok reply -> (
      match job_of_reply reply with
      | Error _ as e -> e
      | Ok j -> (
          match Json.mem_str "state" j with
          | Some ("done" | "faulted" | "cancelled") -> Ok j
          | _ ->
              if Json.mem_bool "draining" reply = Some true then Ok j
              else wait_terminal ~poll_s conn id))
