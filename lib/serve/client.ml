(* The thin client side of the wire protocol: connect, write one JSON
   line, read one JSON line back.  Blocking by design — callers that
   want concurrency open several connections (the daemon multiplexes
   them with [select]). *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?tcp ~socket () =
  if Resilience.Failpoint.fire "client.connect" then
    (* chaos ladder: a connect that fails as if the daemon were down *)
    Error "connect: injected fault"
  else
  match
    let fd =
      match tcp with
      | Some (host, port) ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> raise Not_found
              | h -> h.Unix.h_addr_list.(0))
          in
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          fd
      | None ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          fd
    in
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with
  | conn -> Ok conn
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  | exception Not_found -> Error "connect: host not found"

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* --- retry with jittered exponential backoff ---------------------------- *)

(* Private jitter stream (splitmix64, as everywhere in the repo) so
   retries desynchronize across clients without touching any global
   RNG; a caller-provided seed makes tests deterministic. *)
let jitter_state seed =
  match seed with
  | Some s -> ref (Int64.of_int s)
  | None ->
      ref
        (Int64.logxor
           (Int64.of_float (Unix.gettimeofday () *. 1e6))
           (Int64.of_int (Unix.getpid () * 0x9e37)))

let jitter_next st =
  let open Int64 in
  st := add !st 0x9e3779b97f4a7c15L;
  let z = mul (logxor !st (shift_right_logical !st 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  to_float (shift_right_logical (logxor z (shift_right_logical z 31)) 11)
  /. 9007199254740992.

let backoff_s ~base_s ~cap_s st attempt =
  let full = Float.min cap_s (base_s *. (2. ** float_of_int (attempt - 1))) in
  full *. (0.5 +. (0.5 *. jitter_next st))

(* Connect, retrying refused/failed attempts with capped jittered
   exponential backoff until the overall deadline — a client racing a
   daemon restart waits out the gap instead of failing on the first
   [ECONNREFUSED]. *)
let connect_retry ?tcp ?(deadline_s = 10.) ?(base_s = 0.05) ?(cap_s = 1.0)
    ?seed ~socket () =
  let st = jitter_state seed in
  let t0 = Obs.Clock.now_s () in
  let rec go attempt =
    match connect ?tcp ~socket () with
    | Ok _ as ok -> ok
    | Error e ->
        let elapsed = Obs.Clock.now_s () -. t0 in
        if elapsed >= deadline_s then
          Error
            (Printf.sprintf "%s (gave up after %d attempts in %.2fs)" e attempt
               elapsed)
        else begin
          Unix.sleepf
            (Float.min (backoff_s ~base_s ~cap_s st attempt)
               (Float.max 0.001 (deadline_s -. elapsed)));
          go (attempt + 1)
        end
  in
  go 1

(* Run [f] over a fresh connection, retrying the whole exchange —
   reconnect included — on any error until the overall deadline.  [f]
   must be idempotent; the daemon ops are (submit is deduplicated by
   the digest-keyed result cache, status/wait are reads), which is what
   makes blind re-issue after a dropped socket safe. *)
let with_retry ?tcp ?(deadline_s = 10.) ?(base_s = 0.05) ?(cap_s = 1.0) ?seed
    ~socket f =
  let st = jitter_state seed in
  let t0 = Obs.Clock.now_s () in
  let rec go attempt =
    let outcome =
      match connect ?tcp ~socket () with
      | Error _ as e -> e
      | Ok conn -> Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)
    in
    match outcome with
    | Ok _ as ok -> ok
    | Error e ->
        let elapsed = Obs.Clock.now_s () -. t0 in
        if elapsed >= deadline_s then
          Error
            (Printf.sprintf "%s (gave up after %d attempts in %.2fs)" e attempt
               elapsed)
        else begin
          Unix.sleepf
            (Float.min (backoff_s ~base_s ~cap_s st attempt)
               (Float.max 0.001 (deadline_s -. elapsed)));
          go (attempt + 1)
        end
  in
  go 1

let request conn (req : Json.t) =
  match
    output_string conn.oc (Json.to_string req);
    output_char conn.oc '\n';
    flush conn.oc;
    input_line conn.ic
  with
  | line -> Json.parse line
  | exception End_of_file -> Error "daemon closed the connection"
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* A request that must come back [ok: true]; flattens protocol and
   daemon errors into one [Error _]. *)
let request_ok conn req =
  match request conn req with
  | Error _ as e -> e
  | Ok reply -> (
      match Json.mem_bool "ok" reply with
      | Some true -> Ok reply
      | _ ->
          Error
            (Option.value ~default:"daemon refused the request"
               (Json.mem_str "error" reply)))

(* --- convenience ops ---------------------------------------------------- *)

let op name fields = Json.Obj (("op", Json.String name) :: fields)

let ping conn = request_ok conn (op "ping" [])

let submit conn ?quantum spec =
  let fields = [ ("spec", Job.spec_to_json spec) ] in
  let fields =
    match quantum with
    | Some q -> ("quantum", Json.Int q) :: fields
    | None -> fields
  in
  Result.bind (request_ok conn (op "submit" fields)) (fun reply ->
      match Json.mem_str "id" reply with
      | Some id -> Ok id
      | None -> Error "submit reply carried no id")

(* Pipelined submission: write every submit line, flush once, then read
   the replies back in order.  One round trip for the whole batch, which
   is what makes duplicate-heavy traffic land inside one coalescing
   window instead of arriving a result apart. *)
let submit_many conn ?quantum specs =
  match
    List.iter
      (fun spec ->
        let fields = [ ("spec", Job.spec_to_json spec) ] in
        let fields =
          match quantum with
          | Some q -> ("quantum", Json.Int q) :: fields
          | None -> fields
        in
        output_string conn.oc (Json.to_string (op "submit" fields));
        output_char conn.oc '\n')
      specs;
    flush conn.oc;
    List.map (fun _ -> input_line conn.ic) specs
  with
  | exception End_of_file -> Error "daemon closed the connection"
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | lines ->
      let rec decode acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match Json.parse line with
            | Error _ as e -> e
            | Ok reply -> (
                match (Json.mem_bool "ok" reply, Json.mem_str "id" reply) with
                | Some true, Some id -> decode (id :: acc) rest
                | _ ->
                    Error
                      (Option.value ~default:"daemon refused a submit"
                         (Json.mem_str "error" reply))))
      in
      decode [] lines

let status conn id = request_ok conn (op "status" [ ("id", Json.String id) ])

let wait conn ?timeout_s id =
  let fields = [ ("id", Json.String id) ] in
  let fields =
    match timeout_s with
    | Some s -> ("timeout_s", Json.Float s) :: fields
    | None -> fields
  in
  request_ok conn (op "wait" fields)

let cancel conn id = request_ok conn (op "cancel" [ ("id", Json.String id) ])
let jobs conn = request_ok conn (op "jobs" [])
let stats conn = request_ok conn (op "stats" [])
let drain conn = request_ok conn (op "drain" [])

(* The job object of a status/wait reply. *)
let job_of_reply reply =
  match Json.member "job" reply with
  | Some j -> Ok j
  | None -> Error "reply carried no job"

(* Block until [id] is terminal, re-issuing bounded waits so a slow job
   does not hold one socket read forever. *)
let rec wait_terminal ?(poll_s = 5.) conn id =
  match wait conn ~timeout_s:poll_s id with
  | Error _ as e -> e
  | Ok reply -> (
      match job_of_reply reply with
      | Error _ as e -> e
      | Ok j -> (
          match Json.mem_str "state" j with
          | Some ("done" | "faulted" | "cancelled") -> Ok j
          | _ ->
              if Json.mem_bool "draining" reply = Some true then Ok j
              else wait_terminal ~poll_s conn id))
