(* Edge-labelled directed multigraphs with edge deduplication and endpoint
   indices.  Swarms (edges labelled by ideal spiders) and green graphs
   (edges labelled by S̄) are both instances. *)

module type LABEL = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (Label : LABEL) = struct
  type edge = { label : Label.t; src : int; dst : int }

  let edge_compare (a : edge) (b : edge) =
    let c = Label.compare a.label b.label in
    if c <> 0 then c
    else
      let c = Int.compare a.src b.src in
      if c <> 0 then c else Int.compare a.dst b.dst

  module Edge_set = Set.Make (struct
    type t = edge
    let compare = edge_compare
  end)

  module Label_key = struct
    type t = Label.t
    let equal a b = Label.compare a b = 0
    let hash = Hashtbl.hash
  end

  module Label_tbl = Hashtbl.Make (Label_key)

  module Edge_tbl = Hashtbl.Make (struct
    type t = edge

    let equal a b = edge_compare a b = 0
    let hash (e : edge) = Hashtbl.hash (Hashtbl.hash e.label, e.src, e.dst)
  end)

  (* (vertex, label) adjacency buckets — the graph analog of the
     relational (symbol, position, element) pin index: joins that fix one
     endpoint and a label read their candidates off directly instead of
     filtering every edge at a possibly high-degree vertex. *)
  module Vlab_tbl = Hashtbl.Make (struct
    type t = int * Label.t

    let equal (v1, l1) (v2, l2) = v1 = v2 && Label.compare l1 l2 = 0
    let hash (v, l) = Hashtbl.hash (v, Hashtbl.hash l)
  end)

  (* Journal cells carry a liveness bit: a removed edge's entry becomes a
     tombstone so old watermarks keep their positions, and a re-added
     edge gets a fresh cell — the resurrection lands in the current
     delta, mirroring the relational fact arena. *)
  type jcell = { je : edge; mutable jlive : bool }

  type t = {
    mutable next : int;
    mutable edges : Edge_set.t;
    by_src : (int, edge list ref) Hashtbl.t;
    by_dst : (int, edge list ref) Hashtbl.t;
    by_label : edge list ref Label_tbl.t;
    by_src_lab : edge list ref Vlab_tbl.t;
    by_dst_lab : edge list ref Vlab_tbl.t;
    names : (int, string) Hashtbl.t;
    mutable vertices : (int, unit) Hashtbl.t;
    mutable journal : jcell array; (* delta journal, oldest first *)
    mutable journal_len : int;
    jpos : int Edge_tbl.t; (* live edge -> its journal cell *)
    dg : Relational.Digest128.t; (* incremental journal digest *)
    mutable dg_wm : int; (* journal cells fed so far *)
    mutable dg_valid : bool; (* false: refeed from cell 0 *)
  }

  let create () =
    {
      next = 0;
      edges = Edge_set.empty;
      by_src = Hashtbl.create 64;
      by_dst = Hashtbl.create 64;
      by_label = Label_tbl.create 32;
      by_src_lab = Vlab_tbl.create 64;
      by_dst_lab = Vlab_tbl.create 64;
      names = Hashtbl.create 16;
      vertices = Hashtbl.create 64;
      journal = [||];
      journal_len = 0;
      jpos = Edge_tbl.create 64;
      dg = Relational.Digest128.create ();
      dg_wm = 0;
      dg_valid = true;
    }

  let journal_push t e =
    let n = Array.length t.journal in
    if t.journal_len >= n then begin
      let grown =
        Array.make (max 16 (2 * n)) { je = e; jlive = false }
      in
      Array.blit t.journal 0 grown 0 t.journal_len;
      t.journal <- grown
    end;
    t.journal.(t.journal_len) <- { je = e; jlive = true };
    Edge_tbl.replace t.jpos e t.journal_len;
    t.journal_len <- t.journal_len + 1

  let register t v =
    if not (Hashtbl.mem t.vertices v) then Hashtbl.replace t.vertices v ();
    if v >= t.next then t.next <- v + 1

  let fresh ?name t =
    let v = t.next in
    t.next <- v + 1;
    Hashtbl.replace t.vertices v ();
    (match name with Some n -> Hashtbl.replace t.names v n | None -> ());
    v

  let name t v =
    match Hashtbl.find_opt t.names v with
    | Some n -> n
    | None -> string_of_int v

  let set_name t v n = Hashtbl.replace t.names v n

  let mem_edge t e = Edge_set.mem e t.edges

  let add_edge t label src dst =
    let e = { label; src; dst } in
    if Edge_set.mem e t.edges then false
    else begin
      t.edges <- Edge_set.add e t.edges;
      register t src;
      register t dst;
      let push tbl k =
        let r =
          match Hashtbl.find_opt tbl k with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace tbl k r;
              r
        in
        r := e :: !r
      in
      push t.by_src src;
      push t.by_dst dst;
      let r =
        match Label_tbl.find_opt t.by_label label with
        | Some r -> r
        | None ->
            let r = ref [] in
            Label_tbl.replace t.by_label label r;
            r
      in
      r := e :: !r;
      let push_vlab tbl k =
        let r =
          match Vlab_tbl.find_opt tbl k with
          | Some r -> r
          | None ->
              let r = ref [] in
              Vlab_tbl.replace tbl k r;
              r
        in
        r := e :: !r
      in
      push_vlab t.by_src_lab (src, label);
      push_vlab t.by_dst_lab (dst, label);
      journal_push t e;
      true
    end

  (* Remove a live edge from the edge set and every index bucket; its
     journal cell becomes a tombstone, so watermarks taken before the
     removal stay valid.  Returns [false] if the edge was not present.
     Endpoints stay registered — see {!remove_vertex}. *)
  let remove_edge t label src dst =
    let e = { label; src; dst } in
    if not (Edge_set.mem e t.edges) then false
    else begin
      t.edges <- Edge_set.remove e t.edges;
      let drop tbl k =
        match Hashtbl.find_opt tbl k with
        | Some r -> r := List.filter (fun e' -> edge_compare e e' <> 0) !r
        | None -> ()
      in
      drop t.by_src src;
      drop t.by_dst dst;
      (match Label_tbl.find_opt t.by_label label with
      | Some r -> r := List.filter (fun e' -> edge_compare e e' <> 0) !r
      | None -> ());
      let drop_vlab tbl k =
        match Vlab_tbl.find_opt tbl k with
        | Some r -> r := List.filter (fun e' -> edge_compare e e' <> 0) !r
        | None -> ()
      in
      drop_vlab t.by_src_lab (src, label);
      drop_vlab t.by_dst_lab (dst, label);
      (match Edge_tbl.find_opt t.jpos e with
      | Some i ->
          t.journal.(i).jlive <- false;
          Edge_tbl.remove t.jpos e;
          (* Tombstoning below the digest watermark falsifies the fed
             prefix; the next digest refeeds the journal (streamed). *)
          if i < t.dg_wm then t.dg_valid <- false
      | None -> ());
      true
    end

  (* Unregister an isolated vertex (no incident live edges).  The id is
     never reallocated — [next] does not move back — so a later re-added
     edge may re-register the same id.  Returns [false] if the vertex is
     unknown or still has incident edges. *)
  let remove_vertex t v =
    if not (Hashtbl.mem t.vertices v) then false
    else
      let busy tbl =
        match Hashtbl.find_opt tbl v with
        | Some r -> !r <> []
        | None -> false
      in
      if busy t.by_src || busy t.by_dst then false
      else begin
        Hashtbl.remove t.vertices v;
        Hashtbl.remove t.names v;
        true
      end

  (* Every registered vertex id is [< next_vertex t] ([register] bumps
     [next] past any id it sees), so [next_vertex] bounds vertex ids for
     packed-integer keys over vertex pairs. *)
  let next_vertex t = t.next

  (* Delta journal: every added edge in insertion order; a watermark marks
     a position so semi-naive rule engines can match against only the
     edges added since the previous stage.  Tombstoned (removed) entries
     are skipped. *)
  let watermark t = t.journal_len

  let delta_since t wm =
    let acc = ref [] in
    for i = t.journal_len - 1 downto max wm 0 do
      let c = t.journal.(i) in
      if c.jlive then acc := c.je :: !acc
    done;
    !acc

  (* Canonical 128-bit digest of the graph's build history: live journal
     cells in order (label rendered through [Label.pp], endpoints by
     vertex id) plus the vertex count.  Mirrors
     {!Relational.Structure.digest_hex}: lazy incremental feed from a
     watermark, streamed full refeed after a tombstone below it, no
     O(journal) intermediate string.  Copies rebuild their own journal in
     set order and digest accordingly. *)
  let digest_hex t =
    if not t.dg_valid then begin
      Relational.Digest128.reset t.dg;
      t.dg_wm <- 0;
      t.dg_valid <- true
    end;
    for i = t.dg_wm to t.journal_len - 1 do
      let c = t.journal.(i) in
      if c.jlive then begin
        Relational.Digest128.feed_string t.dg
          (Format.asprintf "%a" Label.pp c.je.label);
        Relational.Digest128.feed_int t.dg c.je.src;
        Relational.Digest128.feed_int t.dg c.je.dst
      end
    done;
    t.dg_wm <- t.journal_len;
    Relational.Digest128.hex ~salt:[ Hashtbl.length t.vertices ] t.dg

  let edges t = Edge_set.elements t.edges
  let size t = Edge_set.cardinal t.edges
  let order t = Hashtbl.length t.vertices
  let vertices t = Hashtbl.fold (fun v () acc -> v :: acc) t.vertices []

  let out_edges t v =
    match Hashtbl.find_opt t.by_src v with Some r -> !r | None -> []

  let in_edges t v =
    match Hashtbl.find_opt t.by_dst v with Some r -> !r | None -> []

  let out_edges_with t v lab =
    match Vlab_tbl.find_opt t.by_src_lab (v, lab) with
    | Some r -> !r
    | None -> []

  let in_edges_with t v lab =
    match Vlab_tbl.find_opt t.by_dst_lab (v, lab) with
    | Some r -> !r
    | None -> []

  let exists_edge t p = Edge_set.exists p t.edges
  let find_edges t p = List.filter p (edges t)

  let with_label t label =
    match Label_tbl.find_opt t.by_label label with Some r -> !r | None -> []

  let iter_edges t f = Edge_set.iter f t.edges

  let copy t =
    let u = create () in
    u.next <- t.next;
    Hashtbl.iter (fun v () -> Hashtbl.replace u.vertices v ()) t.vertices;
    Hashtbl.iter (fun v n -> Hashtbl.replace u.names v n) t.names;
    iter_edges t (fun e -> ignore (add_edge u e.label e.src e.dst));
    u

  let equal a b = Edge_set.equal a.edges b.edges

  (* Quotient: rename every vertex through [f], merging those that share
     an image (used to fold chase prefixes into finite-model candidates). *)
  let map_vertices f t =
    let u = create () in
    Hashtbl.iter (fun v () -> register u (f v)) t.vertices;
    Hashtbl.iter
      (fun v n -> if f v = v then Hashtbl.replace u.names v n)
      t.names;
    iter_edges t (fun e -> ignore (add_edge u e.label (f e.src) (f e.dst)));
    u

  let pp ppf t =
    let pp_edge ppf e =
      Fmt.pf ppf "%a(%s→%s)" Label.pp e.label (name t e.src) (name t e.dst)
    in
    Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_edge) (edges t)

  (* Graphviz export, for inspecting chases and grids visually.
     [edge_color] may map a label to a DOT color name. *)
  let pp_dot ?(edge_color = fun _ -> "black") ppf t =
    Fmt.pf ppf "digraph g {@.";
    List.iter
      (fun v -> Fmt.pf ppf "  n%d [label=\"%s\"];@." v (name t v))
      (List.sort compare (vertices t));
    iter_edges t (fun e ->
        Fmt.pf ppf "  n%d -> n%d [label=\"%a\", color=%s];@." e.src e.dst
          Label.pp e.label (edge_color e.label));
    Fmt.pf ppf "}@."
end
