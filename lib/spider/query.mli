(** Spider queries f^I_J and the binary queries of F₂ (Section V.B).

    f^I_J omits the calves of the legs in I ∪ J and frees their knees
    ("they do the magic of ♣"); a binary query glues two spider queries at
    their antennas (&, tails free) or tails (/, antennas free). *)

open Relational

(** A spider query f^I_J, I and J singleton-or-empty. *)
type f

val f : ?upper:int -> ?lower:int -> unit -> f
val upper : f -> int option
val lower : f -> int option
val pp_f : Format.formatter -> f -> unit

(** {1 Variable naming of one query copy} *)

val head_var : string -> string
val antenna_var : string -> string
val tail_var : string -> string
val upper_knee_var : string -> int -> string
val lower_knee_var : string -> int -> string

(** The body atoms of f^I_J, variables prefixed. *)
val body : Ctx.t -> prefix:string -> f -> Atom.t list

(** The free knee variables of the consumed legs. *)
val magic_knees : prefix:string -> f -> string list

(** The standalone CQ: free variables are tail, antenna and magic knees. *)
val to_cq : Ctx.t -> ?prefix:string -> f -> Cq.Query.t

(** {1 Binary queries} *)

type conn = Amp | Slash

type binary = { left : f; right : f; conn : conn }

(** [amp f f'] is f & f' (antennas identified and quantified). *)
val amp : f -> f -> binary

(** [slash f f'] is f / f' (tails identified and quantified). *)
val slash : f -> f -> binary

val pp_binary : Format.formatter -> binary -> unit

(** The CQ of a binary query (free: the two anchors plus magic knees). *)
val binary_to_cq : Ctx.t -> binary -> Cq.Query.t

(** Its two green-red TGDs (Definition 3). *)
val binary_to_tgds : Ctx.t -> binary -> Tgd.Dep.t list

(** Name and compile a set of binary queries — the Q of a CQfDP
    instance. *)
val queries_of_binaries : Ctx.t -> binary list -> (string * Cq.Query.t) list

val tgds_of_binaries : Ctx.t -> binary list -> Tgd.Dep.t list
