(** Ideal spiders (Section V.B): the set A of elements I^I_J (green base)
    and H^I_J (red base), with I, J ⊆ S singletons or empty. *)

open Relational

type t

val make : ?upper:int -> ?lower:int -> Symbol.color -> t
val green : ?upper:int -> ?lower:int -> unit -> t
val red : ?upper:int -> ?lower:int -> unit -> t

(** The full green spider I. *)
val full_green : t

(** The full red spider H. *)
val full_red : t

val base : t -> Symbol.color
val upper : t -> int option
val lower : t -> int option

val is_full : t -> bool
val is_green : t -> bool
val is_red : t -> bool

(** "Lower" spiders in the sense of Definition 33 / Lemma 34: J ≠ ∅. *)
val is_lower : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** The whole set A: 2(s+1)² = 2 + 4s + 2s² ideal spiders. *)
val all : s:int -> t list

(** A2 (Section VI): the green upper-only spiders, in bijection with
    S̄ = S ∪ {∅}. *)
val all_green_upper : s:int -> t list

(** The color of leg [j] on the given side. *)
val leg_color : t -> [ `Upper | `Lower ] -> int -> Symbol.color

val pp : Format.formatter -> t -> unit

(** A flat, signature-safe code, e.g. ["G1_o"]. *)
val code : t -> string

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
