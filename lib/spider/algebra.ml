(* The Rule of Spider Algebra ♣ (Section V.B):

       f^I_J (H^{I'}_{J'}) = I^{I\I'}_{J\J'}      when I' ⊆ I and J' ⊆ J

   (and the same with colors reversed).  At the ideal level the indices
   are singletons-or-empty, so the subset and difference operations
   degenerate into the little option calculus below.  [Real] + the
   green-red TGDs realize the same rule at Level 0; the test suite checks
   they agree. *)

let subset i' i = match i', i with None, _ -> true | Some _, _ -> i' = i

let diff i i' =
  match i' with
  | None -> i
  | Some _ -> if i = i' then None else invalid_arg "Algebra.diff: not a subset"

(* Does the TGD direction matter?  (f^I_J)^{G→R} applies to green spiders
   and produces red ones, and vice versa; [apply] takes the argument's
   base color as found. *)
let apply (q : Query.f) (s : Ideal.t) : Ideal.t option =
  if subset (Ideal.upper s) (Query.upper q) && subset (Ideal.lower s) (Query.lower q)
  then
    Some
      (Ideal.make
         ?upper:(diff (Query.upper q) (Ideal.upper s))
         ?lower:(diff (Query.lower q) (Ideal.lower s))
         (Relational.Symbol.opposite (Ideal.base s)))
  else None

let applies q s = Option.is_some (apply q s)

(* A binary query applies to a pair of same-colored spiders when both
   components apply (Section V.B's description of how (f & f')^{G→R} acts
   on a structure). *)
let apply_binary (b : Query.binary) (s1 : Ideal.t) (s2 : Ideal.t) =
  if Ideal.base s1 <> Ideal.base s2 then None
  else
    match apply b.Query.left s1, apply b.Query.right s2 with
    | Some r1, Some r2 -> Some (r1, r2)
    | _ -> None
