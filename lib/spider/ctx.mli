(** The spider signature Σ, parameterized by s (footnote 5: "s-pider").

    Anatomy (documented in DESIGN.md): head with an antenna atom, a tail
    atom, and s upper + s lower legs, each a thigh to a knee followed by a
    calf from the knee to the shared constant [leg_end].  The calf colors
    carry the I/J indices of a colored spider. *)

type t

(** The shared calf-end constant of Σ. *)
val leg_end : string

(** @raise Invalid_argument unless [s ≥ 1]. *)
val create : int -> t

val s : t -> int

(** Leg indices run 1..s. *)
val upper_thigh : t -> int -> Relational.Symbol.t

val upper_calf : t -> int -> Relational.Symbol.t
val lower_thigh : t -> int -> Relational.Symbol.t
val lower_calf : t -> int -> Relational.Symbol.t

val ant : t -> Relational.Symbol.t
val tail : t -> Relational.Symbol.t

(** [1; ...; s] *)
val indices : t -> int list

(** All symbols of Σ (uncolored). *)
val symbols : t -> Relational.Symbol.t list
