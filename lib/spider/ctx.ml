(* The spider signature Σ, parameterized by s (the paper's "s-pider",
   footnote 5): each spider has s upper and s lower legs.

   Our concrete anatomy (documented in DESIGN.md — the PODS paper inherits
   it from [GM15] and only constrains it through the properties it uses):

     head h ──ant──→ antenna n          (one antenna atom)
     head h ──tl───→ tail t             (one tail atom)
     head h ──U_j──→ upper knee ──V_j──→ end     (j = 1..s)
     head h ──L_j──→ lower knee ──W_j──→ end     (j = 1..s)

   [end] is a constant of Σ shared by all calves.  In the colored spider
   X^I_J every atom carries the base color of X except the calves of the
   legs listed in I (upper) and J (lower), which carry the opposite color.
   The calf color is what the Rule of Spider Algebra ♣ manipulates. *)

type t = {
  s : int;
  ant : Relational.Symbol.t;
  tail : Relational.Symbol.t;
  upper_thigh : Relational.Symbol.t array; (* U_1 .. U_s at indices 0..s-1 *)
  upper_calf : Relational.Symbol.t array;  (* V_j *)
  lower_thigh : Relational.Symbol.t array; (* L_j *)
  lower_calf : Relational.Symbol.t array;  (* W_j *)
}

let leg_end = "end"

let create s =
  if s < 1 then invalid_arg "Ctx.create: s must be positive";
  let mk prefix j = Relational.Symbol.make (Printf.sprintf "%s%d" prefix (j + 1)) 2 in
  {
    s;
    ant = Relational.Symbol.make "ant" 2;
    tail = Relational.Symbol.make "tl" 2;
    upper_thigh = Array.init s (mk "U");
    upper_calf = Array.init s (mk "V");
    lower_thigh = Array.init s (mk "L");
    lower_calf = Array.init s (mk "W");
  }

let s t = t.s
let ant t = t.ant
let tail t = t.tail

(* j ranges over 1..s in the paper; arrays are 0-based. *)
let upper_thigh t j = t.upper_thigh.(j - 1)
let upper_calf t j = t.upper_calf.(j - 1)
let lower_thigh t j = t.lower_thigh.(j - 1)
let lower_calf t j = t.lower_calf.(j - 1)

let indices t = List.init t.s (fun i -> i + 1)

(* All symbols of Σ (uncolored). *)
let symbols t =
  (t.ant :: t.tail :: Array.to_list t.upper_thigh)
  @ Array.to_list t.upper_calf
  @ Array.to_list t.lower_thigh
  @ Array.to_list t.lower_calf
