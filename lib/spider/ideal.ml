(* Ideal spiders (Section V.B): the elements of A are I^I_J (green base)
   and H^I_J (red base) where I, J ⊆ S are singletons or empty.  We write
   the optional indices as [int option]. *)

open Relational

type t = {
  base : Symbol.color;     (* Green for I-spiders, Red for H-spiders *)
  upper : int option;      (* I: index of the upper leg in opposite color *)
  lower : int option;      (* J: same for the lower leg *)
}

let make ?upper ?lower base = { base; upper; lower }

let green ?upper ?lower () = make ?upper ?lower Symbol.Green
let red ?upper ?lower () = make ?upper ?lower Symbol.Red

(* The full green spider I and the full red spider H. *)
let full_green = green ()
let full_red = red ()

let base t = t.base
let upper t = t.upper
let lower t = t.lower

let is_full t = t.upper = None && t.lower = None
let is_green t = t.base = Symbol.Green
let is_red t = t.base = Symbol.Red

(* "Lower" spiders in the sense of Definition 33 / Lemma 34: J ≠ ∅. *)
let is_lower t = t.lower <> None

let equal a b = a = b
let compare = Stdlib.compare

(* The set A for a given s: 2(s+1)² ideal spiders (the paper counts them
   as 2 + 4s + 2s²). *)
let all ~s =
  let opts = None :: List.init s (fun i -> Some (i + 1)) in
  List.concat_map
    (fun base ->
      List.concat_map
        (fun upper -> List.map (fun lower -> { base; upper; lower }) opts)
        opts)
    [ Symbol.Green; Symbol.Red ]

(* A2 (Section VI): the green spiders of the form I^I — no lower index.
   In bijection with S̄ = S ∪ {∅}. *)
let all_green_upper ~s =
  List.map (fun upper -> { base = Symbol.Green; upper; lower = None })
    (None :: List.init s (fun i -> Some (i + 1)))

(* Which color is leg [j] of this spider?  [`Upper]/[`Lower] selects the
   leg family. *)
let leg_color t side j =
  let flipped =
    match side with `Upper -> t.upper = Some j | `Lower -> t.lower = Some j
  in
  if flipped then Symbol.opposite t.base else t.base

let pp ppf t =
  let letter = match t.base with Symbol.Green -> "I" | Symbol.Red -> "H" in
  let idx ppf = function
    | None -> Fmt.string ppf "∅"
    | Some i -> Fmt.int ppf i
  in
  match t.upper, t.lower with
  | None, None -> Fmt.string ppf letter
  | u, l -> Fmt.pf ppf "%s^%a_%a" letter idx u idx l

(* A compact, signature-safe code: used to derive relation names for the
   swarm-as-structure view. *)
let code t =
  let letter = match t.base with Symbol.Green -> "G" | Symbol.Red -> "R" in
  let idx = function None -> "o" | Some i -> string_of_int i in
  Printf.sprintf "%s%s_%s" letter (idx t.upper) (idx t.lower)

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
