(** Real spiders: homomorphic copies of ideal spiders inside a structure
    over Σ̄ (footnote 7). *)

type t = {
  ideal : Ideal.t;
  head : int;
  tail : int;
  antenna : int;
  upper_knees : int array;  (** knee of upper leg j at index j-1 *)
  lower_knees : int array;
}

val pp : Format.formatter -> t -> unit

(** Add a real copy of the ideal spider with the given tail and antenna.
    [knee] optionally supplies knee elements per (side, index, calf color)
    — compile's ∼-quotient (Definition 29) passes the class
    representatives; by default knees are fresh. *)
val realize :
  Ctx.t ->
  Relational.Structure.t ->
  ?knee:([ `Upper | `Lower ] -> int -> Relational.Symbol.color -> int) ->
  tail:int ->
  antenna:int ->
  Ideal.t ->
  t

(** Reconstruct the real spider headed at the element, if any. *)
val at_head : Ctx.t -> Relational.Structure.t -> int -> t option

(** All real spiders of a structure (candidate heads are the sources of
    antenna atoms). *)
val find_all : Ctx.t -> Relational.Structure.t -> t list
