(** The Rule of Spider Algebra ♣ (Section V.B):
    [f^I_J (H^{I'}_{J'}) = I^{I\I'}_{J\J'}] when I′ ⊆ I and J′ ⊆ J (and
    dually on green arguments).  The test suite verifies that the
    green-red TGDs implement exactly this at Level 0. *)

(** Subset test on singleton-or-empty index sets. *)
val subset : int option -> int option -> bool

(** Difference I∖I′ of singleton-or-empty sets.
    @raise Invalid_argument when I′ ⊄ I. *)
val diff : int option -> int option -> int option

(** [apply f s] is ♣, with the result base color opposite to [s]'s. *)
val apply : Query.f -> Ideal.t -> Ideal.t option

val applies : Query.f -> Ideal.t -> bool

(** Both components on a same-colored pair of spiders — how a binary query
    acts (Section V.B). *)
val apply_binary : Query.binary -> Ideal.t -> Ideal.t -> (Ideal.t * Ideal.t) option
