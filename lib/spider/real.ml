(* Real spiders: homomorphic copies of ideal spiders living inside a
   structure over Σ̄ (footnote 7).  [realize] builds one; [Detect] finds
   them. *)

open Relational

type t = {
  ideal : Ideal.t;
  head : int;
  tail : int;
  antenna : int;
  upper_knees : int array; (* knee of upper leg j at index j-1 *)
  lower_knees : int array;
}

let pp ppf r =
  Fmt.pf ppf "%a@@%d(tail=%d,ant=%d)" Ideal.pp r.ideal r.head r.tail r.antenna

(* Add a real copy of [ideal] to [st], with the given tail and antenna
   elements.  [knee] optionally supplies knee elements (used by compile's
   ∼-quotient, Definition 29); by default knees are fresh. *)
let realize ctx st ?knee ~tail ~antenna ideal =
  let base = Ideal.base ideal in
  let head = Structure.fresh st in
  Structure.add2 st (Symbol.paint base ((Ctx.ant ctx))) head antenna;
  Structure.add2 st (Symbol.paint base (Ctx.tail ctx)) head tail;
  let the_end = Structure.constant st Ctx.leg_end in
  let knee_of side j =
    match knee with
    | Some f -> f side j (Ideal.leg_color ideal side j)
    | None -> Structure.fresh st
  in
  let leg side j =
    let thigh, calf =
      match side with
      | `Upper -> (Ctx.upper_thigh ctx j, Ctx.upper_calf ctx j)
      | `Lower -> (Ctx.lower_thigh ctx j, Ctx.lower_calf ctx j)
    in
    let k = knee_of side j in
    Structure.add2 st (Symbol.paint base thigh) head k;
    Structure.add2 st (Symbol.paint (Ideal.leg_color ideal side j) calf) k the_end;
    k
  in
  let upper_knees = Array.of_list (List.map (leg `Upper) (Ctx.indices ctx)) in
  let lower_knees = Array.of_list (List.map (leg `Lower) (Ctx.indices ctx)) in
  { ideal; head; tail; antenna; upper_knees; lower_knees }

(* --- detection -------------------------------------------------------- *)

(* The unique colored binary fact with symbol [dalt_sym] and first argument
   [h]; [None] if absent or ambiguous in color. *)
let colored_out st dalt_sym h =
  let hits =
    List.filter
      (fun f ->
        Symbol.equal (Symbol.dalt (Fact.sym f)) dalt_sym && Fact.arg f 0 = h)
      (Structure.facts_with_elem st h)
  in
  match hits with [ f ] -> Some f | _ -> None

(* Reconstruct the real spider whose head is [h], if any.  Heads created
   by realize/chase carry exactly one antenna atom whose color is the base
   color; each leg must be complete (thigh + calf) with thigh in base
   color.  The calf colors determine I and J. *)
let at_head ctx st h =
  let ( let* ) = Option.bind in
  let* ant_fact = colored_out st (Ctx.ant ctx) h in
  let* base = Fact.color ant_fact in
  let antenna = Fact.arg ant_fact 1 in
  let* tail_fact = colored_out st (Ctx.tail ctx) h in
  let* () = if Fact.color tail_fact = Some base then Some () else None in
  let tail = Fact.arg tail_fact 1 in
  let the_end = Structure.constant_opt st Ctx.leg_end in
  let* the_end = the_end in
  (* walk one leg: returns the knee and whether the calf is flipped *)
  let leg side j =
    let thigh, calf =
      match side with
      | `Upper -> (Ctx.upper_thigh ctx j, Ctx.upper_calf ctx j)
      | `Lower -> (Ctx.lower_thigh ctx j, Ctx.lower_calf ctx j)
    in
    let* thigh_fact =
      List.find_opt
        (fun f ->
          Symbol.equal (Fact.sym f) (Symbol.paint base thigh)
          && Fact.arg f 0 = h)
        (Structure.facts_with_elem st h)
    in
    let knee = Fact.arg thigh_fact 1 in
    let* calf_fact =
      List.find_opt
        (fun f ->
          Symbol.equal (Symbol.dalt (Fact.sym f)) calf
          && Fact.arg f 0 = knee && Fact.arg f 1 = the_end)
        (Structure.facts_with_elem st knee)
    in
    let* calf_color = Fact.color calf_fact in
    Some (knee, calf_color <> base)
  in
  let rec legs side j flipped knees =
    if j > Ctx.s ctx then
      let* flipped =
        match flipped with [] -> Some None | [ j ] -> Some (Some j) | _ -> None
      in
      Some (flipped, Array.of_list (List.rev knees))
    else
      let* knee, flip = leg side j in
      legs side (j + 1) (if flip then j :: flipped else flipped) (knee :: knees)
  in
  let* upper, upper_knees = legs `Upper 1 [] [] in
  let* lower, lower_knees = legs `Lower 1 [] [] in
  let ideal = Ideal.make ?upper ?lower base in
  Some { ideal; head = h; tail; antenna; upper_knees; lower_knees }

(* All real spiders of the structure: candidate heads are the sources of
   antenna atoms. *)
let find_all ctx st =
  let heads =
    List.concat_map
      (fun c ->
        List.map (fun f -> Fact.arg f 0)
          (Structure.facts_with_sym st (Symbol.paint c (Ctx.ant ctx))))
      [ Symbol.Green; Symbol.Red ]
    |> List.sort_uniq compare
  in
  List.filter_map (at_head ctx st) heads
