(* Integer codes for rainworm machine symbols, compatible with the label
   scheme of Section VII (Separating.Labels): the special symbols share
   the fixed codes 6–14; tape letters and sweep states are allocated
   fresh codes from 48 upwards (above the grid range), preserving parity (even symbols get even
   codes — Parity Glasses depend on it). *)

type t = {
  table : (Rainworm.Sym.t, int) Hashtbl.t;
  mutable next_even : int;
  mutable next_odd : int;
}

let create () = { table = Hashtbl.create 64; next_even = 48; next_odd = 49 }

let code t (s : Rainworm.Sym.t) =
  match s with
  | Rainworm.Sym.Alpha -> Separating.Labels.alpha
  | Rainworm.Sym.Beta0 -> Separating.Labels.beta0
  | Rainworm.Sym.Beta1 -> Separating.Labels.beta1
  | Rainworm.Sym.Eta0 -> Separating.Labels.eta0
  | Rainworm.Sym.Eta1 -> Separating.Labels.eta1
  | Rainworm.Sym.Eta11 -> Separating.Labels.eta11
  | Rainworm.Sym.Gamma0 -> Separating.Labels.gamma0
  | Rainworm.Sym.Gamma1 -> Separating.Labels.gamma1
  | Rainworm.Sym.Omega0 -> Separating.Labels.omega0
  | _ -> (
      match Hashtbl.find_opt t.table s with
      | Some c -> c
      | None ->
          let c =
            if Rainworm.Sym.is_even s then begin
              let c = t.next_even in
              t.next_even <- t.next_even + 2;
              c
            end
            else begin
              let c = t.next_odd in
              t.next_odd <- t.next_odd + 2;
              c
            end
          in
          Hashtbl.replace t.table s c;
          c)

let label t s : Greengraph.Label.t = Some (code t s)

(* A configuration as a word of codes. *)
let word t (w : Rainworm.Config.t) = List.map (code t) w

(* Reverse lookup: the symbol a code denotes, among the specials and the
   symbols this labeling has allocated so far. *)
let sym_of_code t c =
  let specials =
    [
      (Separating.Labels.alpha, Rainworm.Sym.Alpha);
      (Separating.Labels.beta0, Rainworm.Sym.Beta0);
      (Separating.Labels.beta1, Rainworm.Sym.Beta1);
      (Separating.Labels.eta0, Rainworm.Sym.Eta0);
      (Separating.Labels.eta1, Rainworm.Sym.Eta1);
      (Separating.Labels.eta11, Rainworm.Sym.Eta11);
      (Separating.Labels.gamma0, Rainworm.Sym.Gamma0);
      (Separating.Labels.gamma1, Rainworm.Sym.Gamma1);
      (Separating.Labels.omega0, Rainworm.Sym.Omega0);
    ]
  in
  match List.assoc_opt c specials with
  | Some s -> Some s
  | None ->
      Hashtbl.fold
        (fun s c' acc -> if c = c' then Some s else acc)
        t.table None

(* Decode a word of codes back into machine symbols, when every code is
   known. *)
let decode_word t codes =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
        match sym_of_code t c with
        | Some s -> go (s :: acc) rest
        | None -> None)
  in
  go [] codes
