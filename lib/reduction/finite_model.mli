(** The finite-model construction of Section VIII.E (Lemma 24 "⇐"): for a
    halting rainworm, a finite green graph containing D_I, satisfying
    T_M (Lemma 26) — and, after gridding, T_M ∪ T□ — with no 1-2
    pattern. *)

type t = {
  graph : Greengraph.Graph.t;
  a : int;
  b : int;
  stages_run : int;
}

(** Draw a coded word as a Parity-Glasses path between two vertices. *)
val draw_word : Greengraph.Graph.t -> va:int -> vb:int -> int list -> unit

(** One snapshot stage of the §VIII.E procedure: right-to-left direction
    only, constants reused for ∅ (clause (ii)).  Returns the number of
    additions. *)
val stage : a:int -> b:int -> Greengraph.Rule.t list -> Greengraph.Graph.t -> Greengraph.Graph.t -> int

(** Build M = M_{k_M + 1} from the final configuration. *)
val build : Worm_rules.t -> final_config:Rainworm.Config.t -> k_m:int -> t

(** Lemma 40(1) (Appendix C), executable: every word of the (pre-grid)
    model decodes to a machine word creeping forward to exactly u_M.
    Returns the number of words checked.
    @raise Failure on a violation. *)
val check_lemma40 :
  ?max_len:int -> Worm_rules.t -> t -> final_config:Rainworm.Config.t -> int

(** Run the machine to termination, build M and grid it into M̄.
    @raise Invalid_argument if the machine does not halt in the budget. *)
val of_halting_machine :
  ?max_steps:int ->
  Rainworm.Machine.t ->
  Worm_rules.t * t * Greengraph.Rule.stats
