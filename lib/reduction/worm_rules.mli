(** ∆ → T_M: a rainworm machine as green-graph rewriting rules
    (Section VIII.C), plus the Lemma 24/25 tooling. *)

type t = {
  labeling : Labeling.t;
  machine : Rainworm.Machine.t;
  rules : Greengraph.Rule.t list;  (** T_M *)
}

(** The two machine-independent rules: ∅&··∅ ] α&··η11 and
    η11/··∅ ] γ1/··η0. *)
val base_rules : Labeling.t -> Greengraph.Rule.t list

(** The rule of one instruction ([None] for ♦1, which the base rules
    cover); the connector is determined by the parity of the first lhs
    symbol. *)
val rule_of_instruction : Labeling.t -> Rainworm.Instruction.t -> Greengraph.Rule.t option

val of_machine : ?labeling:Labeling.t -> Rainworm.Machine.t -> t

(** T_M□ = T_M ∪ T□, the rule set of Lemma 24. *)
val with_grid : t -> Greengraph.Rule.t list

(** Bounded chase(T_M, D_I) (optionally with T□). *)
val chase :
  ?engine:Greengraph.Rule.engine ->
  ?jobs:int ->
  ?with_tbox:bool ->
  stages:int ->
  t ->
  Greengraph.Graph.t * int * int * Greengraph.Rule.stats

(** The word of a configuration, to be tested against the chase
    (Lemma 25). *)
val configuration_word : t -> Rainworm.Config.t -> int list

(** The b-vertices of the longest α(β1β0)* spine from [a] in Parity
    Glasses. *)
val alpha_beta_spine : Greengraph.Graph.t -> a:int -> int list

(** Lemma 24 "⇒" made finite: chase, fold spine vertices [i] and [j]
    together (the pigeonhole collision of any finite model), grid with T□
    and look for the 1-2 pattern.
    @raise Invalid_argument when the spine is shorter than the fold. *)
val fold_and_grid :
  ?engine:Greengraph.Rule.engine ->
  ?jobs:int ->
  ?stages:int ->
  ?grid_stages:int ->
  t ->
  fold:int * int ->
  bool * Greengraph.Rule.stats * Greengraph.Graph.t
