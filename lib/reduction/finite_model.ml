(* The finite-model construction of Section VIII.E (the "⇐" direction of
   Lemma 24): given a rainworm machine ∆ whose computation terminates
   after k_M steps in final configuration u_M, build a finite green graph
   M̄ that contains D_I, satisfies T_M (and, after gridding, T_M ∪ T□) and
   has no 1-2 pattern — certifying that T_M□ does not finitely lead to
   the red spider.

   M0 is D_I plus u_M drawn as a Parity-Glasses path from a to b; the
   procedure then runs k_M + 1 snapshot stages, each applying only the
   right-to-left direction of every rule of T_M, and reusing the constant
   edge H∅(a,b) instead of creating fresh ∅-edges (clause (ii)). *)

type t = {
  graph : Greengraph.Graph.t;
  a : int;
  b : int;
  stages_run : int;
}

(* Draw a word as a Parity-Glasses path from [va] to [vb]: even symbols
   become forward edges, odd symbols reversed ones. *)
let draw_word g ~va ~vb word =
  let n = List.length word in
  let vertex i =
    if i = 0 then va
    else if i = n then vb
    else Greengraph.Graph.fresh ~name:(Printf.sprintf "u%d" i) g
  in
  let rec go i v = function
    | [] -> ()
    | code :: rest ->
        let v' = vertex (i + 1) in
        if code mod 2 = 0 then ignore (Greengraph.Graph.add_edge g (Some code) v v')
        else ignore (Greengraph.Graph.add_edge g (Some code) v' v);
        go (i + 1) v' rest
  in
  go 0 (vertex 0) word

(* One snapshot stage of the procedure: for every rule and every
   right-match in [snapshot] lacking a left-match, add the left pair to
   [g] (clause (i)), or reuse the constants when the missing partner is
   the ∅-edge (clause (ii)). *)
let stage ~a ~b rules snapshot g =
  let added = ref 0 in
  List.iter
    (fun (r : Greengraph.Rule.t) ->
      let conn = r.Greengraph.Rule.conn in
      let lc = r.Greengraph.Rule.l1 and ld = r.Greengraph.Rule.l2 in
      let rc = r.Greengraph.Rule.r1 and rd = r.Greengraph.Rule.r2 in
      (* right-matches in the snapshot: rhs pair at free ends (c, c') *)
      List.iter
        (fun (e1 : Greengraph.Graph.edge) ->
          if Greengraph.Label.equal e1.Greengraph.Graph.label rc then
            List.iter
              (fun (e2 : Greengraph.Graph.edge) ->
                if
                  Greengraph.Label.equal e2.Greengraph.Graph.label rd
                  && Greengraph.Rule.shared_of conn e2
                     = Greengraph.Rule.shared_of conn e1
                then begin
                  let c = Greengraph.Rule.free_of conn e1 in
                  let c' = Greengraph.Rule.free_of conn e2 in
                  (* ♥: no left-match in the snapshot *)
                  if not (Greengraph.Rule.pair_present snapshot conn (lc, ld) (c, c'))
                     && not (Greengraph.Rule.pair_present g conn (lc, ld) (c, c'))
                  then begin
                    incr added;
                    match ld, conn with
                    | None, Greengraph.Rule.Amp ->
                        (* (ii): reuse H∅(a,b): the partner is at c' = a *)
                        ignore (Greengraph.Graph.add_edge g lc c b)
                    | None, Greengraph.Rule.Slash ->
                        ignore (Greengraph.Graph.add_edge g lc a c)
                    | Some _, Greengraph.Rule.Amp ->
                        let d = Greengraph.Graph.fresh g in
                        ignore (Greengraph.Graph.add_edge g lc c d);
                        ignore (Greengraph.Graph.add_edge g ld c' d)
                    | Some _, Greengraph.Rule.Slash ->
                        let d = Greengraph.Graph.fresh g in
                        ignore (Greengraph.Graph.add_edge g lc d c);
                        ignore (Greengraph.Graph.add_edge g ld d c')
                  end
                end)
              (Greengraph.Graph.edges snapshot))
        (Greengraph.Graph.edges snapshot))
    rules;
  !added

(* Build M = M_{k_M + 1}. *)
let build (wr : Worm_rules.t) ~final_config ~k_m =
  let g, a, b = Greengraph.Graph.d_i () in
  draw_word g ~va:a ~vb:b (Worm_rules.configuration_word wr final_config);
  let stages_run = ref 0 in
  (try
     for _m = 0 to k_m do
       let snapshot = Greengraph.Graph.copy g in
       let added = stage ~a ~b wr.Worm_rules.rules snapshot g in
       incr stages_run;
       if added = 0 then raise Exit
     done
   with Exit -> ());
  { graph = g; a; b; stages_run = !stages_run }

(* The Appendix C loop invariant Lemma 40(1), made executable on the
   built model: every word of M (Definition 16, bounded enumeration) that
   does not loop back through the constant [a] mid-word decodes to a
   machine word creeping forward to exactly u_M.  (Strictly by
   Definition 15, words(M) also contains concatenations of an a-loop with
   another word; their segments are covered separately, so we skip the
   composites.)  Returns the number of words checked; raises on a
   violation. *)
let check_lemma40 ?(max_len = 12) (wr : Worm_rules.t) (m : t) ~final_config =
  let words = Greengraph.Pg.words_upto m.graph ~a:m.a ~b:m.b ~max_len in
  let arrows = Greengraph.Pg.arrows m.graph in
  let revisits_a w =
    (* does some proper nonempty prefix of w reach back to a? *)
    let rec go states = function
      | [] | [ _ ] -> false
      | lab :: rest ->
          let states' = Greengraph.Pg.step_states arrows states lab in
          List.mem m.a states' || go states' rest
    in
    go [ m.a ] w
  in
  let oracle = Rainworm.Machine.oracle wr.Worm_rules.machine in
  let checked = ref 0 in
  List.iter
    (fun w ->
      if not (revisits_a w) then begin
        incr checked;
        match Labeling.decode_word wr.Worm_rules.labeling w with
        | None ->
            failwith
              (Fmt.str "Lemma 40: word %a has an unknown code"
                 Greengraph.Pg.pp_word w)
        | Some config ->
            let trace = Rainworm.Sim.creep ~from:config ~max_steps:10_000 oracle in
            let final = Rainworm.Sim.final_config trace in
            if not (Rainworm.Sim.halted trace && final = final_config) then
              failwith
                (Fmt.str "Lemma 40: word %a does not creep to u_M"
                   Greengraph.Pg.pp_word w)
      end)
    words;
  !checked

(* Run the machine to termination and build M̄ = M ∪ grids: the complete
   finite countermodel, checked by the Lemma 26 / Lemma 24 tests. *)
let of_halting_machine ?(max_steps = 100_000) machine =
  let trace = Rainworm.Sim.creep_machine ~max_steps machine in
  match trace.Rainworm.Sim.outcome with
  | Rainworm.Sim.Running _ ->
      invalid_arg "Finite_model.of_halting_machine: machine did not halt"
  | Rainworm.Sim.Halted final ->
      let wr = Worm_rules.of_machine machine in
      let m = build wr ~final_config:final ~k_m:trace.Rainworm.Sim.steps in
      (* M̄: complete the grids demanded by T□ *)
      let stats =
        Greengraph.Rule.chase ~max_stages:10_000
          ~stop:Greengraph.Graph.has_12_pattern Separating.Tbox.rules m.graph
      in
      (wr, m, stats)
