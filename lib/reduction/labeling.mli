(** Integer codes for rainworm machine symbols, compatible with the label
    scheme of Section VII: specials share the fixed codes 6–14; tape
    letters and sweep states are allocated from 48 upwards (above the grid
    range), preserving parity (even symbols ↦ even codes — Parity Glasses
    depend on it). *)

type t

val create : unit -> t

(** The (stable) code of a symbol, allocated on first use. *)
val code : t -> Rainworm.Sym.t -> int

val label : t -> Rainworm.Sym.t -> Greengraph.Label.t

(** A configuration as a word of codes. *)
val word : t -> Rainworm.Config.t -> int list

(** Reverse lookup among the specials and the codes allocated so far. *)
val sym_of_code : t -> int -> Rainworm.Sym.t option

(** Decode a whole word, when every code is known. *)
val decode_word : t -> int list -> Rainworm.Config.t option
