(* ∆ → T_M: translating a rainworm machine into green-graph rewriting
   rules (Section VIII.C).

     • ∅&··∅ ] α&··η11  and  η11/··∅ ] γ1/··η0 are always in T_M;
     • η0&··∅ ] b&··η1           for each ♦2 instruction η0 → bη1;
     • η1/··∅ ] q/··ω0           for each ♦3 instruction η1 → qω0;
     • x/··t ] x'/··t'           for instructions of form ♦4,♦5,♦6,♦7,♦8;
     • x&··t ] x'&··t'           for instructions of form ♦4',♦5',♦6',♦7'.

   The connector is determined by parity: a two-symbol subword "x t" with
   x odd reads in Parity Glasses as two edges sharing their source (/·),
   with x even as two edges sharing their target (&·) — which matches the
   paper's assignment of ♦-forms to connectors. *)

type t = {
  labeling : Labeling.t;
  machine : Rainworm.Machine.t;
  rules : Greengraph.Rule.t list;
}

let base_rules labeling =
  let l s = Labeling.label labeling s in
  [
    Greengraph.Rule.amp ~name:"init1" (None, None)
      (l Rainworm.Sym.Alpha, l Rainworm.Sym.Eta11);
    Greengraph.Rule.slash ~name:"init2" (l Rainworm.Sym.Eta11, None)
      (l Rainworm.Sym.Gamma1, l Rainworm.Sym.Eta0);
  ]

let rule_of_instruction labeling i =
  let l s = Labeling.label labeling s in
  match Rainworm.Instruction.lhs i, Rainworm.Instruction.rhs i with
  | [ Rainworm.Sym.Eta11 ], _ -> None (* covered by the base rules *)
  | [ Rainworm.Sym.Eta0 ], [ b; eta1 ] ->
      Some
        (Greengraph.Rule.amp ~name:"♦2" (l Rainworm.Sym.Eta0, None) (l b, l eta1))
  | [ Rainworm.Sym.Eta1 ], [ q; om ] ->
      Some
        (Greengraph.Rule.slash ~name:"♦3" (l Rainworm.Sym.Eta1, None) (l q, l om))
  | [ x; t ], [ x'; t' ] ->
      let name = Fmt.str "%a" Rainworm.Instruction.pp i in
      if Rainworm.Sym.is_odd x then
        Some (Greengraph.Rule.slash ~name (l x, l t) (l x', l t'))
      else Some (Greengraph.Rule.amp ~name (l x, l t) (l x', l t'))
  | _ -> None

let of_machine ?(labeling = Labeling.create ()) machine =
  let rules =
    base_rules labeling
    @ List.filter_map (rule_of_instruction labeling) (Rainworm.Machine.rules machine)
  in
  { labeling; machine; rules }

(* T_M□ = T_M ∪ T□ — the rule set of Lemma 24. *)
let with_grid t = t.rules @ Separating.Tbox.rules

(* chase(T_M, D_I) up to a stage bound. *)
let chase ?engine ?jobs ?(with_tbox = false) ~stages t =
  let g, a, b = Greengraph.Graph.d_i () in
  let rules = if with_tbox then with_grid t else t.rules in
  let stats = Greengraph.Rule.chase ?engine ?jobs ~max_stages:stages rules g in
  (g, a, b, stats)

(* Lemma 25: every machine configuration reachable from αη11 is a word of
   chase(T_M, D_I).  [configuration_word] gives the word to test. *)
let configuration_word t config = Labeling.word t.labeling config

(* Extract the αβ-spine of a green graph containing D_I: the vertices
   a, b1, a1, b2, … of the longest path α(β1β0)* starting at [a] in
   Parity Glasses.  Returns the b-vertices in order. *)
let alpha_beta_spine g ~a =
  let arrows = Greengraph.Pg.arrows g in
  let next v lab =
    List.find_map
      (fun (ar : Greengraph.Pg.arrow) ->
        if ar.Greengraph.Pg.src = v && ar.Greengraph.Pg.lab = lab then
          Some ar.Greengraph.Pg.dst
        else None)
      arrows
  in
  match next a Separating.Labels.alpha with
  | None -> []
  | Some b1 ->
      let rec go v acc =
        match next v Separating.Labels.beta1 with
        | None -> List.rev acc
        | Some ai -> (
            match next ai Separating.Labels.beta0 with
            | None -> List.rev acc
            | Some b_next -> go b_next (b_next :: acc))
      in
      go b1 [ b1 ]

(* The "⇒" direction of Lemma 24, made finite: fold the chase prefix by
   identifying two b-vertices of the αβ-spine (the pigeonhole collision
   of any finite model), then chase T□ and look for the 1-2 pattern. *)
let fold_and_grid ?engine ?jobs ?(stages = 20) ?(grid_stages = 64) t ~fold:(i, j) =
  let g, a, _, _ = chase ?engine ?jobs ~stages t in
  let spine = alpha_beta_spine g ~a in
  if List.length spine <= max i j then
    invalid_arg "fold_and_grid: spine too short; raise ~stages";
  let vi = List.nth spine i and vj = List.nth spine j in
  let folded =
    Greengraph.Graph.map_vertices (fun v -> if v = vj then vi else v) g
  in
  let stats =
    Greengraph.Rule.chase ?engine ?jobs ~max_stages:grid_stages
      ~stop:Greengraph.Graph.has_12_pattern Separating.Tbox.rules folded
  in
  (Greengraph.Graph.has_12_pattern folded, stats, folded)
