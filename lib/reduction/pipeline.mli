(** The end-to-end reduction of Theorem 5: ∆ → T_M□ → Precompile →
    Q = Compile(Precompile(T_M□)) and Q0 = ∃* dalt(I), such that Q
    finitely determines Q0 iff the rainworm creeps forever. *)

type t = {
  worm : Worm_rules.t;
  green_rules : Greengraph.Rule.t list;  (** T_M□ *)
  level0 : Greengraph.Precompile.level0;
  q0 : Cq.Query.t;                        (** ∃* dalt(I) *)
}

val of_machine : ?labeling:Labeling.t -> Rainworm.Machine.t -> t

(** Size summary of an instance. *)
type shape = {
  machine_instructions : int;
  green_rule_count : int;
  swarm_rule_count : int;
  query_count : int;
  tgd_count : int;
  s : int;
  atoms_per_query : int;
}

val shape : t -> shape
val pp_shape : Format.formatter -> shape -> unit
