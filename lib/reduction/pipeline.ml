(* The end-to-end reduction of Theorem 5: from a rainworm machine ∆ to an
   instance (Q, Q0) of the Conjunctive Query Finite Determinacy Problem.

     ∆  →  T_M□ = T_M ∪ T□  (green-graph rules, Section VIII)
        →  Precompile(T_M□)  (swarm rules, Definition 9)
        →  Q = Compile(Precompile(T_M□))  (CQs over Σ, Definition 8)
        →  Q0 = ∃* dalt(I)  (Observation 13)

   ∆ creeps forever  ⟺  T_M□ finitely leads to the red spider
                     ⟺  Q finitely determines Q0.

   The instance is fully materialized (queries, TGDs, the boolean query
   Q0); its Level-0 structures are large — one spider query has 2 + 4s
   atoms with s = required_s — so the tests exercise the instance's
   *shape* and run the semantics at Levels 1 and 2, while small instances
   are chased at Level 0 end to end. *)

type t = {
  worm : Worm_rules.t;
  green_rules : Greengraph.Rule.t list;  (* T_M□ *)
  level0 : Greengraph.Precompile.level0;
  q0 : Cq.Query.t;                        (* ∃* dalt(I) *)
}

let of_machine ?labeling machine =
  let worm = Worm_rules.of_machine ?labeling machine in
  let green_rules = Worm_rules.with_grid worm in
  let level0 = Greengraph.Precompile.to_level0 green_rules in
  let q0 =
    Cq.Query.close
      (Spider.Query.to_cq level0.Greengraph.Precompile.ctx (Spider.Query.f ()))
  in
  { worm; green_rules; level0; q0 }

type shape = {
  machine_instructions : int;
  green_rule_count : int;
  swarm_rule_count : int;
  query_count : int;
  tgd_count : int;
  s : int;
  atoms_per_query : int;
}

let shape t =
  let s = Spider.Ctx.s t.level0.Greengraph.Precompile.ctx in
  {
    machine_instructions = Rainworm.Machine.size t.worm.Worm_rules.machine;
    green_rule_count = List.length t.green_rules;
    swarm_rule_count = List.length t.level0.Greengraph.Precompile.swarm_rules;
    query_count = List.length t.level0.Greengraph.Precompile.queries;
    tgd_count = List.length t.level0.Greengraph.Precompile.tgds;
    s;
    atoms_per_query =
      (match t.level0.Greengraph.Precompile.queries with
      | (_, q) :: _ -> List.length (Cq.Query.body q)
      | [] -> 0);
  }

let pp_shape ppf sh =
  Fmt.pf ppf
    "instructions=%d green-rules=%d swarm-rules=%d CQs=%d TGDs=%d s=%d \
     atoms/CQ=%d"
    sh.machine_instructions sh.green_rule_count sh.swarm_rule_count
    sh.query_count sh.tgd_count sh.s sh.atoms_per_query
