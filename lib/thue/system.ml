(* Semi-Thue systems (string rewriting), the formalism underlying rainworm
   machines (Section VIII.A): "∆ is formulated in the language of Thue
   semisystem rules", w ⤳ v meaning w = w1·s·w2, v = w1·t·w2 for a rule
   s → t.

   The module is polymorphic in the symbol type; the rainworm layer
   instantiates it with its own structured symbols. *)

type 'a rule = { lhs : 'a list; rhs : 'a list; tag : string }

let rule ?(tag = "") lhs rhs =
  if lhs = [] then invalid_arg "Thue.rule: empty left-hand side";
  { lhs; rhs; tag }

type 'a t = { rules : 'a rule list; equal : 'a -> 'a -> bool }

let make ?(equal = ( = )) rules = { rules; equal }

let rules t = t.rules

(* Does [prefix] start [word]?  Returns the rest on success. *)
let rec strip_prefix equal prefix word =
  match prefix, word with
  | [], rest -> Some rest
  | _ :: _, [] -> None
  | p :: ps, w :: ws -> if equal p w then strip_prefix equal ps ws else None

(* All one-step rewrites of [word]: (position, rule, result). *)
let rewrites t word =
  let rec at pos before word acc =
    let acc =
      List.fold_left
        (fun acc r ->
          match strip_prefix t.equal r.lhs word with
          | Some rest ->
              (pos, r, List.rev_append before (r.rhs @ rest)) :: acc
          | None -> acc)
        acc t.rules
    in
    match word with
    | [] -> List.rev acc
    | w :: ws -> at (pos + 1) (w :: before) ws acc
  in
  at 0 [] word []

(* The unique one-step successor, when the system is locally deterministic
   at [word] (rainworm machines are: Lemma 22(2)). *)
let step t word =
  match rewrites t word with
  | [] -> None
  | [ (_, r, w) ] -> Some (r, w)
  | (_, r, w) :: _ :: _ -> Some (r, w) (* caller may check determinism *)

let deterministic_at t word = List.length (rewrites t word) <= 1

(* [run ~max_steps t word] iterates [step]; returns the trace (including
   the initial word) and whether the system stopped by itself. *)
let run ~max_steps t word =
  let rec go n word acc =
    if n >= max_steps then (List.rev (word :: acc), false)
    else
      match step t word with
      | None -> (List.rev (word :: acc), true)
      | Some (_, w) -> go (n + 1) w (word :: acc)
  in
  go 0 word []

(* Distinct left-hand sides: the paper requires ∆ to be a partial function
   (footnote 16). *)
let partial_function ?(equal = ( = )) rules =
  let rec distinct = function
    | [] -> true
    | r :: rest ->
        (not (List.exists (fun r' -> List.length r.lhs = List.length r'.lhs
                                     && List.for_all2 equal r.lhs r'.lhs) rest))
        && distinct rest
  in
  distinct rules

(* k-step reachability: w ⤳^≤k v (used in tests on tiny systems). *)
let reachable ~max_steps t ~from ~target =
  let equal_word a b =
    List.length a = List.length b && List.for_all2 t.equal a b
  in
  let rec go n word =
    if equal_word word target then true
    else if n >= max_steps then false
    else match step t word with None -> false | Some (_, w) -> go (n + 1) w
  in
  go 0 from
