(** Semi-Thue systems (string rewriting), the formalism underlying
    rainworm machines (Section VIII.A): [w ⤳ v] iff [w = w1·s·w2] and
    [v = w1·t·w2] for a rule [s → t].  Polymorphic in the symbol type. *)

type 'a rule = { lhs : 'a list; rhs : 'a list; tag : string }

(** @raise Invalid_argument on an empty left-hand side. *)
val rule : ?tag:string -> 'a list -> 'a list -> 'a rule

type 'a t

val make : ?equal:('a -> 'a -> bool) -> 'a rule list -> 'a t
val rules : 'a t -> 'a rule list

(** All one-step rewrites of a word: (position, rule, result). *)
val rewrites : 'a t -> 'a list -> (int * 'a rule * 'a list) list

(** One successor (the first, if several apply). *)
val step : 'a t -> 'a list -> ('a rule * 'a list) option

(** At most one rewrite applies at this word (Lemma 22(2) situation). *)
val deterministic_at : 'a t -> 'a list -> bool

(** Iterate [step]; returns the trace (initial word included) and whether
    the system stopped by itself within the budget. *)
val run : max_steps:int -> 'a t -> 'a list -> 'a list list * bool

(** Distinct left-hand sides — the partial-function requirement on ∆
    (footnote 16). *)
val partial_function : ?equal:('a -> 'a -> bool) -> 'a rule list -> bool

(** Deterministic bounded reachability [from ⤳^{≤max_steps} target]. *)
val reachable : max_steps:int -> 'a t -> from:'a list -> target:'a list -> bool
