(* compile / decompile between swarms and Σ̄-structures
   (Definitions 28 and 29, Lemmas 27 and 30).

   decompile reads each real spider of a structure as a swarm edge
   H(S, tail, antenna).  compile realizes each swarm edge as a real
   spider and then quotients knees by ∼: two knees are identified iff
   their calves have the same predicate symbol (side and index) and the
   same color — implemented directly by allocating one global knee per
   ∼-class (4s of them). *)

open Relational

(* Definition 28. *)
let decompile ctx st =
  let g = Graph.create () in
  List.iter
    (fun (r : Spider.Real.t) ->
      Graph.register g r.Spider.Real.tail;
      Graph.register g r.Spider.Real.antenna;
      ignore
        (Graph.add_edge g r.Spider.Real.ideal r.Spider.Real.tail
           r.Spider.Real.antenna))
    (Spider.Real.find_all ctx st);
  g

(* Definition 29.  Swarm vertices keep their identities as structure
   elements; heads are fresh; knees are the 4s ∼-class representatives. *)
let compile ctx g =
  let st = Structure.create () in
  (* mirror the swarm's vertices (tails and antennas) *)
  List.iter
    (fun v ->
      Structure.reserve st v;
      Structure.set_name st v (Graph.name g v))
    (List.sort compare (Graph.vertices g));
  let knee_classes = Hashtbl.create 32 in
  let knee side j color =
    let key = ((match side with `Upper -> 0 | `Lower -> 1), j, color) in
    match Hashtbl.find_opt knee_classes key with
    | Some k -> k
    | None ->
        let k = Structure.fresh st in
        Hashtbl.replace knee_classes key k;
        k
  in
  Graph.iter_edges g (fun e ->
      ignore
        (Spider.Real.realize ctx st ~knee ~tail:e.Graph.src
           ~antenna:e.Graph.dst e.Graph.label));
  st
