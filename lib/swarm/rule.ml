(* Swarm rewriting rules — the set L₁ of Definition 7.

   A rule f^{I1}_{J1} &· f^{I2}_{J2} (resp. /·) says: whenever two
   same-colored edges labelled S1, S2 share their target (resp. source)
   and the Rule of Spider Algebra lets f^{I1}_{J1} act on S1 and
   f^{I2}_{J2} act on S2, there must be a fresh-shared-endpoint pair of
   edges labelled f(S1), f(S2) anchored at the old free endpoints. *)

type t = {
  left : Spider.Query.f;
  right : Spider.Query.f;
  conn : Spider.Query.conn;  (* Amp: shared target; Slash: shared source *)
}

let amp left right = { left; right; conn = Spider.Query.Amp }
let slash left right = { left; right; conn = Spider.Query.Slash }

let binary t = { Spider.Query.left = t.left; right = t.right; conn = t.conn }

(* Definition 8: Compile treats each swarm rule as the corresponding
   binary query from F₂. *)
let compile = binary

let compile_set rules = List.map compile rules

(* "Lower" rules (Definition 33): both J1 and J2 nonempty. *)
let is_lower t =
  Spider.Query.lower t.left <> None && Spider.Query.lower t.right <> None

let pp ppf t =
  Fmt.pf ppf "%a %s· %a" Spider.Query.pp_f t.left
    (match t.conn with Spider.Query.Amp -> "&" | Spider.Query.Slash -> "/")
    Spider.Query.pp_f t.right

(* --- semantics -------------------------------------------------------- *)

(* The anchors of an edge under a connector: [shared] is the identified
   endpoint, [free] the other one. *)
let shared_of conn (e : Graph.edge) =
  match conn with Spider.Query.Amp -> e.Graph.dst | Spider.Query.Slash -> e.Graph.src

let free_of conn (e : Graph.edge) =
  match conn with Spider.Query.Amp -> e.Graph.src | Spider.Query.Slash -> e.Graph.dst

let edges_at_shared g conn y =
  match conn with
  | Spider.Query.Amp -> Graph.in_edges g y
  | Spider.Query.Slash -> Graph.out_edges g y

(* An active trigger: a pair of edges matching the rule's left-hand side
   whose demanded witnesses are absent. *)
let witness_exists g conn (p1, free1) (p2, free2) =
  List.exists
    (fun (e1 : Graph.edge) ->
      free_of conn e1 = free1
      && List.exists
           (fun (e2 : Graph.edge) ->
             Spider.Ideal.equal e2.Graph.label p2 && free_of conn e2 = free2)
           (edges_at_shared g conn (shared_of conn e1)))
    (Graph.with_label g p1)

let triggers rule g =
  List.concat_map
    (fun (e1 : Graph.edge) ->
      List.filter_map
        (fun (e2 : Graph.edge) ->
          match
            Spider.Algebra.apply_binary (binary rule) e1.Graph.label
              e2.Graph.label
          with
          | None -> None
          | Some (p1, p2) ->
              let f1 = free_of rule.conn e1 and f2 = free_of rule.conn e2 in
              if witness_exists g rule.conn (p1, f1) (p2, f2) then None
              else Some ((p1, f1), (p2, f2)))
        (edges_at_shared g rule.conn (shared_of rule.conn e1)))
    (Graph.edges g)

(* Fire one trigger: create the fresh shared endpoint and the two edges. *)
let fire rule g ((p1, f1), (p2, f2)) =
  let v = Graph.fresh g in
  (match rule.conn with
  | Spider.Query.Amp ->
      ignore (Graph.add_edge g p1 f1 v);
      ignore (Graph.add_edge g p2 f2 v)
  | Spider.Query.Slash ->
      ignore (Graph.add_edge g p1 v f1);
      ignore (Graph.add_edge g p2 v f2))

let models rules g = List.for_all (fun r -> triggers r g = []) rules

(* A chase for swarms, mirroring Tgd.Chase.run: stage by stage, collect
   the active triggers then fire those still active. *)
type stats = { stages : int; applications : int; fixpoint : bool }

let chase ?(max_stages = max_int) ?(stop = fun _ -> false) rules g =
  let applications = ref 0 in
  let rec go i =
    if i > max_stages then { stages = i - 1; applications = !applications; fixpoint = false }
    else begin
      (* collect all triggers against the stage-start swarm, then fire
         those still active (mirroring the chase of Section II.C) *)
      let collected =
        List.concat_map (fun rule -> List.map (fun t -> (rule, t)) (triggers rule g)) rules
      in
      let fired = ref 0 in
      List.iter
        (fun (rule, ((p1, f1), (p2, f2))) ->
          if not (witness_exists g rule.conn (p1, f1) (p2, f2)) then begin
            fire rule g ((p1, f1), (p2, f2));
            incr fired
          end)
        collected;
      applications := !applications + !fired;
      if !fired = 0 then { stages = i; applications = !applications; fixpoint = true }
      else if stop g then { stages = i; applications = !applications; fixpoint = false }
      else go (i + 1)
    end
  in
  go 1

(* Definition 11 for L₁, as a bounded semi-decision: chase the seed swarm
   (one full green spider) and watch for a full red spider edge. *)
let leads_to_red_spider ?(max_stages = 16) rules =
  let g, _, _ = Graph.seed () in
  let stats = chase ~max_stages ~stop:Graph.has_full_red rules g in
  if Graph.has_full_red g then `Leads (stats, g)
  else if stats.fixpoint then `Does_not_lead (stats, g)
  else `Unknown (stats, g)
