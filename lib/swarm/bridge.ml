(* Swarms as relational structures.

   A swarm is a structure over the Level-1 signature: one binary relation
   H_S per ideal spider S (Section VI).  The bridge lets the generic TGD
   machinery (chase, model check, homomorphisms) run on swarms, and the
   test suite uses it to cross-validate the dedicated swarm engine against
   the generic one. *)

open Relational

(* The relation symbol of an ideal spider. *)
let symbol_of ideal = Symbol.make ("H_" ^ Spider.Ideal.code ideal) 2

(* Decode a Level-1 symbol back into its spider, if it is one. *)
let ideal_of_symbol ~s sym =
  let name = Symbol.name sym in
  if String.length name < 3 || String.sub name 0 2 <> "H_" then None
  else
    let code = String.sub name 2 (String.length name - 2) in
    List.find_opt
      (fun ideal -> String.equal (Spider.Ideal.code ideal) code)
      (Spider.Ideal.all ~s)

let to_structure g =
  let st = Structure.create () in
  List.iter
    (fun v ->
      Structure.reserve st v;
      Structure.set_name st v (Graph.name g v))
    (List.sort compare (Graph.vertices g));
  Graph.iter_edges g (fun e ->
      Structure.add2 st (symbol_of e.Graph.label) e.Graph.src e.Graph.dst);
  st

let of_structure ~s st =
  let g = Graph.create () in
  List.iter
    (fun v ->
      Graph.register g v;
      Graph.set_name g v (Structure.name st v))
    (Structure.elems st);
  Structure.iter_facts st (fun f ->
      match ideal_of_symbol ~s (Fact.sym f) with
      | Some ideal -> ignore (Graph.add_edge g ideal (Fact.arg f 0) (Fact.arg f 1))
      | None -> ());
  g

(* A swarm rule as a pair of generic TGDs over the Level-1 signature:
   Definition 7's big conjunction, one TGD per subset choice and color.
   The subsets of singleton-or-empty indices are the index itself and ∅. *)
let tgds_of_rule (rule : Rule.t) =
  let subsets = function None -> [ None ] | Some i -> [ None; Some i ] in
  let b = Rule.binary rule in
  let q1 = b.Spider.Query.left and q2 = b.Spider.Query.right in
  let conn = b.Spider.Query.conn in
  let colors = [ Symbol.Green; Symbol.Red ] in
  List.concat_map
    (fun base ->
      List.concat_map
        (fun u1 ->
          List.concat_map
            (fun l1 ->
              List.concat_map
                (fun u2 ->
                  List.filter_map
                    (fun l2 ->
                      let s1 = Spider.Ideal.make ?upper:u1 ?lower:l1 base in
                      let s2 = Spider.Ideal.make ?upper:u2 ?lower:l2 base in
                      match Spider.Algebra.apply_binary b s1 s2 with
                      | None -> None
                      | Some (p1, p2) ->
                          let v = Term.var in
                          let edge sym x y = Atom.app2 (symbol_of sym) (v x) (v y) in
                          let body, head =
                            match conn with
                            | Spider.Query.Amp ->
                                ( [ edge s1 "x" "y"; edge s2 "x'" "y" ],
                                  [ edge p1 "x" "y'"; edge p2 "x'" "y'" ] )
                            | Spider.Query.Slash ->
                                ( [ edge s1 "x" "y"; edge s2 "x" "y'" ],
                                  [ edge p1 "x'" "y"; edge p2 "x'" "y'" ] )
                          in
                          Some
                            (Tgd.Dep.make
                               ~name:(Fmt.str "%a[%a,%a]" Rule.pp rule
                                        Spider.Ideal.pp s1 Spider.Ideal.pp s2)
                               ~body ~head ()))
                    (subsets (Spider.Query.lower q2)))
                (subsets (Spider.Query.upper q2)))
            (subsets (Spider.Query.lower q1)))
        (subsets (Spider.Query.upper q1)))
    colors

let tgds_of_rules rules = List.concat_map tgds_of_rule rules
