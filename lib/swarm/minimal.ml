(* Minimal models (Definition 31) and the lower-rule invariant (Lemma 34).

   In a model M of T ⊆ L₁ containing the seed edge H(I,a,b), an edge is
   *important* if it is the seed or belongs to a witness pair demanded by
   a rule applied to two important edges.  The substructure of important
   edges is again a model — a minimal one — and minimality restores the
   stage-by-stage inductive structure that arbitrary finite models lack. *)

(* The witness pairs of a rule for a given pair of lhs edges present in g:
   all pairs (e1', e2') in g matching the rule's ♣-image and anchoring. *)
let witness_pairs rule g (e1 : Graph.edge) (e2 : Graph.edge) =
  let conn = rule.Rule.conn in
  if Rule.shared_of conn e1 <> Rule.shared_of conn e2 then []
  else
    match
      Spider.Algebra.apply_binary (Rule.binary rule) e1.Graph.label e2.Graph.label
    with
    | None -> []
    | Some (p1, p2) ->
        let f1 = Rule.free_of conn e1 and f2 = Rule.free_of conn e2 in
        List.concat_map
          (fun (w1 : Graph.edge) ->
            if Spider.Ideal.equal w1.Graph.label p1 && Rule.free_of conn w1 = f1
            then
              List.filter_map
                (fun (w2 : Graph.edge) ->
                  if
                    Spider.Ideal.equal w2.Graph.label p2
                    && Rule.free_of conn w2 = f2
                    && Rule.shared_of conn w2 = Rule.shared_of conn w1
                  then Some (w1, w2)
                  else None)
                (Graph.edges g)
            else [])
          (Graph.edges g)

(* The set of important edges of a model [g] of [rules] with seed edges
   [seeds] (typically the H(I,a,b) edges).  Least fixpoint: saturate the
   witness relation from the seeds. *)
let important_edges rules g ~seeds =
  let module ES = Set.Make (struct
    type t = Graph.edge
    let compare (a : Graph.edge) (b : Graph.edge) = compare a b
  end) in
  let important = ref (ES.of_list seeds) in
  let changed = ref true in
  while !changed do
    changed := false;
    let current = ES.elements !important in
    List.iter
      (fun rule ->
        List.iter
          (fun e1 ->
            List.iter
              (fun e2 ->
                List.iter
                  (fun ((w1 : Graph.edge), (w2 : Graph.edge)) ->
                    (* mark the first witness pair; any one pair suffices to
                       justify the demand (Definition 31 fixes "the"
                       postulated pair — we take all, a superset) *)
                    if not (ES.mem w1 !important) then begin
                      important := ES.add w1 !important;
                      changed := true
                    end;
                    if not (ES.mem w2 !important) then begin
                      important := ES.add w2 !important;
                      changed := true
                    end)
                  (witness_pairs rule g e1 e2))
              current)
          current)
      rules
  done;
  ES.elements !important

(* Extract a minimal model: restrict to the important edges. *)
let minimal_model rules g =
  let seeds =
    List.filter
      (fun (e : Graph.edge) ->
        Spider.Ideal.equal e.Graph.label Spider.Ideal.full_green)
      (Graph.edges g)
  in
  if seeds = [] then invalid_arg "Minimal.minimal_model: no H(I,_,_) seed";
  let keep = important_edges rules g ~seeds in
  let m = Graph.create () in
  List.iter
    (fun (e : Graph.edge) -> ignore (Graph.add_edge m e.Graph.label e.Graph.src e.Graph.dst))
    keep;
  m

(* Lemma 34's invariant, as a checkable predicate: in a minimal model of a
   set of *lower* rules, an edge label is red iff it is lower. *)
let lemma34_holds m =
  List.for_all
    (fun (e : Graph.edge) ->
      Spider.Ideal.is_red e.Graph.label = Spider.Ideal.is_lower e.Graph.label)
    (Graph.edges m)
