(** compile / decompile between swarms and Σ̄-structures
    (Definitions 28–29, Lemmas 27 and 30). *)

(** Definition 28: the swarm of all H(S, tail, antenna) for real spiders
    of the structure. *)
val decompile : Spider.Ctx.t -> Relational.Structure.t -> Graph.t

(** Definition 29: realize each edge as a real spider, quotienting knees
    by ∼ (same calf symbol and color) — implemented by allocating one
    global knee per class.  Swarm vertices keep their identities as
    structure elements. *)
val compile : Spider.Ctx.t -> Graph.t -> Relational.Structure.t
