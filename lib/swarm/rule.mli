(** Swarm rewriting rules — the set L₁ of Definition 7 — and their chase.

    A rule f^{I1}_{J1} &· f^{I2}_{J2} (resp. /·) demands, for every pair
    of same-colored edges sharing their target (resp. source) to which the
    Rule of Spider Algebra applies, a witness pair of ♣-image edges
    anchored at the old free endpoints and sharing a joint endpoint. *)

type t = {
  left : Spider.Query.f;
  right : Spider.Query.f;
  conn : Spider.Query.conn;
}

(** [amp f f'] is f &· f' (shared targets). *)
val amp : Spider.Query.f -> Spider.Query.f -> t

(** [slash f f'] is f /· f' (shared sources). *)
val slash : Spider.Query.f -> Spider.Query.f -> t

(** The rule seen as a binary query from F₂. *)
val binary : t -> Spider.Query.binary

(** Definition 8: Compile treats each swarm rule as a binary query. *)
val compile : t -> Spider.Query.binary

val compile_set : t list -> Spider.Query.binary list

(** Both lower indices nonempty (Definition 33). *)
val is_lower : t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Semantics} *)

(** The identified endpoint of an edge under a connector. *)
val shared_of : Spider.Query.conn -> Graph.edge -> int

(** The free endpoint. *)
val free_of : Spider.Query.conn -> Graph.edge -> int

(** Is the demanded witness pair present? *)
val witness_exists :
  Graph.t ->
  Spider.Query.conn ->
  Spider.Ideal.t * int ->
  Spider.Ideal.t * int ->
  bool

(** The active triggers: demanded-but-absent witness pairs. *)
val triggers : t -> Graph.t -> ((Spider.Ideal.t * int) * (Spider.Ideal.t * int)) list

(** Fire one trigger: fresh joint vertex plus the two witness edges. *)
val fire : t -> Graph.t -> (Spider.Ideal.t * int) * (Spider.Ideal.t * int) -> unit

val models : t list -> Graph.t -> bool

type stats = { stages : int; applications : int; fixpoint : bool }

(** Stage-based chase mirroring {!Tgd.Chase.run}. *)
val chase : ?max_stages:int -> ?stop:(Graph.t -> bool) -> t list -> Graph.t -> stats

(** Definition 11 for L₁, bounded: chase the seed swarm and watch for a
    full red spider edge. *)
val leads_to_red_spider :
  ?max_stages:int ->
  t list ->
  [ `Leads of stats * Graph.t
  | `Does_not_lead of stats * Graph.t
  | `Unknown of stats * Graph.t ]
