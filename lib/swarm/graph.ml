(* Swarms: structures over the Abstraction Level 1 signature — one binary
   relation H(S,·,·) per ideal spider S ∈ A (Section VI).  An edge
   H(S, x, y) reads "a real spider isomorphic to S with tail x and
   antenna y". *)

include Lgraph.Make (struct
  type t = Spider.Ideal.t

  let compare = Spider.Ideal.compare
  let pp = Spider.Ideal.pp
end)

(* Does the swarm contain a green (resp. red) full spider edge — the
   conditions of Definition 11 for T ⊆ L1. *)
let has_full_green t =
  exists_edge t (fun e -> Spider.Ideal.equal e.label Spider.Ideal.full_green)

let has_full_red t =
  exists_edge t (fun e -> Spider.Ideal.equal e.label Spider.Ideal.full_red)

(* The seed swarm: one full green spider edge between two fresh vertices. *)
let seed () =
  let t = create () in
  let a = fresh ~name:"a" t and b = fresh ~name:"b" t in
  ignore (add_edge t Spider.Ideal.full_green a b);
  (t, a, b)
