(** Minimal models (Definition 31) and the lower-rule invariant
    (Lemma 34). *)

(** The witness pairs a rule demands for two lhs edges, as present in the
    swarm. *)
val witness_pairs :
  Rule.t -> Graph.t -> Graph.edge -> Graph.edge -> (Graph.edge * Graph.edge) list

(** The least set of important edges: seeds plus witnesses of rules
    applied to important edges, saturated. *)
val important_edges : Rule.t list -> Graph.t -> seeds:Graph.edge list -> Graph.edge list

(** Restrict a model to its important edges, seeding from the full green
    spider edges.
    @raise Invalid_argument if the swarm has no H(I,_,_) edge. *)
val minimal_model : Rule.t list -> Graph.t -> Graph.t

(** Lemma 34's invariant: every edge label is red iff it is lower. *)
val lemma34_holds : Graph.t -> bool
