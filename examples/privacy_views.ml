(* Privacy through non-determinacy (Section I's motivation): "we would
   like to release some views of the database, but in a way that does not
   allow certain query to be computed".

   A hospital holds a binary relation Visited(patient, clinic) plus unary
   relations.  It wants to publish useful aggregate-ish views while
   keeping the query "which patient visited which specialist clinic"
   uncomputable from them.

     dune exec examples/privacy_views.exe *)

open Core
open Relational

let visited = Symbol.make "Visited" 2
let sensitive = Symbol.make "Specialist" 1
let v = Term.var

let q_visits =
  (* the secret: pairs (p, c) with c a specialist clinic *)
  Cq.Query.make ~free:[ "p"; "c" ]
    [ Atom.app2 visited (v "p") (v "c"); Atom.make sensitive [ v "c" ] ]

(* candidate view sets *)
let view_patients =
  (* who visited anything: ∃c Visited(p,c) *)
  Cq.Query.make ~free:[ "p" ] [ Atom.app2 visited (v "p") (v "c") ]

let view_clinics =
  (* which specialist clinics received any visit *)
  Cq.Query.make ~free:[ "c" ]
    [ Atom.app2 visited (v "p") (v "c"); Atom.make sensitive [ v "c" ] ]

let view_full = Cq.Query.make ~free:[ "p"; "c" ] [ Atom.app2 visited (v "p") (v "c") ]
let view_specialist = Cq.Query.make ~free:[ "c" ] [ Atom.make sensitive [ v "c" ] ]

let audit name views =
  let inst = Determinacy.Instance.make ~views ~q0:q_visits in
  let verdict = unrestricted_determinacy ~max_stages:24 inst in
  let leak =
    match verdict with
    | Determinacy.Solver.Determined _ -> "LEAKS — the secret is computable from the views"
    | Determinacy.Solver.Not_determined _ -> "safe — views do not determine the secret"
    | Determinacy.Solver.Unknown why -> "inconclusive (" ^ why ^ ")"
  in
  Format.printf "  %-28s %s@." name leak;
  (* when not determined, exhibit the witnessing pair of databases *)
  match Determinacy.Solver.finite ~max_elems:2 inst with
  | Determinacy.Solver.Not_determined d ->
      Format.printf "      finite witness (two-colored, %a):@." Structure.pp_stats d;
      Format.printf "      @[<v>%a@]@." Structure.pp d
  | _ -> ()

let () =
  Format.printf "Privacy auditing via (non-)determinacy@.@.";
  Format.printf "secret query: %a@.@." Cq.Query.pp q_visits;
  audit "projections only" [ ("patients", view_patients); ("clinics", view_clinics) ];
  audit "full visit log" [ ("log", view_full) ];
  audit "log + specialist list"
    [ ("log", view_full); ("spec", view_specialist) ];
  Format.printf
    "@.Theorem 1 says this audit cannot be automated in general: CQ finite@.\
     determinacy is undecidable — which is why the checks above are bounded@.\
     semi-decisions with certificates.@."
