(* Rainworm machines (Section VIII): creeping, the TM compiler behind
   Lemma 21, and the reduction ∆ → T_M → (Q, Q0) behind Theorem 5.

     dune exec examples/rainworm_demo.exe *)

open Core

let show_creep name machine steps =
  Format.printf "--- %s ---@." name;
  let o = Rainworm.Machine.oracle machine in
  let configs = Rainworm.Sim.reachable_configs ~max_steps:steps o in
  List.iteri
    (fun i c -> if i <= 12 then Format.printf "  %2d: %a@." i Rainworm.Sym.pp_word c)
    configs;
  let t = Rainworm.Sim.creep ~max_steps:10_000 o in
  Format.printf "  after %d steps: %s, %d full cycles, longest configuration %d@.@."
    t.Rainworm.Sim.steps
    (if Rainworm.Sim.halted t then "HALTED" else "still creeping")
    t.Rainworm.Sim.cycles t.Rainworm.Sim.max_length

let () =
  Format.printf "Rainworm machines and the Theorem 5 reduction@.@.";

  (* 1. the minimal eternal creeper *)
  show_creep "eternal creeper (12 instructions)" Rainworm.Zoo.eternal_creeper 40;

  (* 2. a Turing machine compiled to a rainworm (Lemma 21) *)
  let tm = Rainworm.Zoo.tm_write_k 3 in
  Format.printf "--- TM '%s' compiled to a rainworm ---@." tm.Rainworm.Turing.name;
  let direct_steps, _ = Rainworm.Turing.run tm in
  let worm = Rainworm.Sim.creep ~max_steps:200_000 (Rainworm.Tm_compiler.oracle tm) in
  Format.printf "  TM halts after %d steps; the worm halts after %d cycles: %b@."
    direct_steps worm.Rainworm.Sim.cycles (Rainworm.Sim.halted worm);
  let tm2 = Rainworm.Zoo.tm_right_forever in
  let worm2 = Rainworm.Sim.creep ~max_steps:20_000 (Rainworm.Tm_compiler.oracle tm2) in
  Format.printf "  TM '%s' diverges; the worm is still creeping after %d cycles: %b@.@."
    tm2.Rainworm.Turing.name worm2.Rainworm.Sim.cycles
    (not (Rainworm.Sim.halted worm2));

  (* 3. ∆ → T_M: configurations are chase words (Lemma 25) *)
  let wr = Reduction.Worm_rules.of_machine Rainworm.Zoo.eternal_creeper in
  Format.printf "--- ∆ → T_M (%d green-graph rules) ---@."
    (List.length wr.Reduction.Worm_rules.rules);
  let g, a, b, _ = Reduction.Worm_rules.chase ~stages:25 wr in
  let configs =
    Rainworm.Sim.reachable_configs ~max_steps:20
      (Rainworm.Machine.oracle Rainworm.Zoo.eternal_creeper)
  in
  let all_words =
    List.for_all
      (fun c ->
        Greengraph.Pg.in_words g ~a ~b (Reduction.Worm_rules.configuration_word wr c))
      configs
  in
  Format.printf "  all %d reachable configurations are words of chase(T_M, D_I): %b (Lemma 25)@.@."
    (List.length configs) all_words;

  (* 4. the two Lemma 24 directions *)
  Format.printf "--- Lemma 24 ---@.";
  let pattern, _, _ = Reduction.Worm_rules.fold_and_grid ~stages:60 wr ~fold:(0, 2) in
  Format.printf
    "  creeping forever: folding the slime trail grids a 1-2 pattern: %b  (⇒)@." pattern;
  let wr2, m, _ = Reduction.Finite_model.of_halting_machine Rainworm.Zoo.stillborn in
  Format.printf
    "  halting: Section VIII.E builds a finite model (%d edges), 1-2-pattern-free: %b, ⊨ T_M ∪ T□: %b  (⇐)@."
    (Greengraph.Graph.size m.Reduction.Finite_model.graph)
    (not (Greengraph.Graph.has_12_pattern m.Reduction.Finite_model.graph))
    (Greengraph.Rule.models (Reduction.Worm_rules.with_grid wr2)
       m.Reduction.Finite_model.graph);

  (* 5. the full CQfDP instance of Theorem 5 *)
  let _inst, p = reduce_machine Rainworm.Zoo.eternal_creeper in
  Format.printf "@.--- Theorem 5 instance for the eternal creeper ---@.";
  Format.printf "  %a@." Reduction.Pipeline.pp_shape (Reduction.Pipeline.shape p);
  Format.printf
    "  Q finitely determines Q0 = ∃*dalt(I)  ⟺  the rainworm creeps forever.@."
