(* The separating example of Section VII (Theorem 14): a set of CQs that
   FINITELY determines a query without determining it in the unrestricted
   sense — the first such example known.

     dune exec examples/separating_example.exe *)

open Core

let () =
  Format.printf "Theorem 14: T = T∞ ∪ T□ separates finite from unrestricted determinacy@.@.";

  (* T∞: three rules whose chase from D_I is the infinite quasi-path of
     Figure 1. *)
  Format.printf "T∞ rules:@.";
  List.iter (Format.printf "  %a@." Greengraph.Rule.pp) Separating.Tinf.rules;
  let g, a, b, stats = Separating.Tinf.chase ~stages:12 () in
  Format.printf "chase(T∞, D_I) after %d stages: %d edges, %d vertices@."
    stats.Greengraph.Rule.stages (Greengraph.Graph.size g)
    (Greengraph.Graph.order g);
  Format.printf "words seen through Parity Glasses (Definition 16):@.";
  List.iter
    (fun w -> Format.printf "  %a@." Greengraph.Pg.pp_word w)
    (List.sort compare (Greengraph.Pg.words_upto g ~a ~b ~max_len:6));

  (* T□: 41 rules that grid two colliding αβ-paths (Figures 2–3). *)
  Format.printf "@.T□ has %d rules (1 trigger + 4 southern + 4 eastern + 32 interior)@."
    Separating.Tbox.size;

  (* the unrestricted side: the chase of T∞ ∪ T□ stays clean *)
  let clean, g_t = Separating.Theorem14.chase_prefix_clean ~stages:7 () in
  Format.printf
    "chase(T, D_I) prefix (%d edges): 1-2 pattern present: %b  — T does NOT lead to the red spider@."
    (Greengraph.Graph.size g_t) (not clean);

  (* the finite side: folding the infinite path forces the pattern *)
  Format.printf "@.finite models fold the path (pigeonhole); gridding the fold:@.";
  List.iter
    (fun (t, t') ->
      let pattern, stats, g = Separating.Theorem14.collision_outcome ~t ~t' () in
      Format.printf
        "  αβ-paths of lengths %d and %d sharing endpoints: 1-2 pattern %b (%d stages, %d edges)@."
        t t' pattern stats.Greengraph.Rule.stages (Greengraph.Graph.size g))
    [ (2, 2); (2, 3); (3, 5) ];
  Format.printf
    "  (equal lengths stay clean — Figure 4's square grids are harmless)@.";

  (* the compiled instance *)
  let p = Greengraph.Precompile.to_level0 Separating.Tbox.t_full in
  Format.printf
    "@.compiled to Level 0: %d CQs over the spider signature (s = %d), %d green-red TGDs@."
    (List.length p.Greengraph.Precompile.queries)
    (Spider.Ctx.s p.Greengraph.Precompile.ctx)
    (List.length p.Greengraph.Precompile.tgds);
  Format.printf
    "⇒ Q = Compile(Precompile(T)) finitely determines ∃*dalt(I) but does not determine it.@."
