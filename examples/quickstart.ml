(* Quickstart: define conjunctive-query views, ask whether they determine
   another query, and inspect the chase certificate (Section IV).

     dune exec examples/quickstart.exe *)

open Core
open Relational

let edge = Symbol.make "E" 2
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

(* The k-step path query P_k(x, y). *)
let path k =
  let name i = if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i in
  Cq.Query.make ~free:[ "x"; "y" ] (List.init k (fun i -> e (name i) (name (i + 1))))

let describe inst =
  Format.printf "@[<v>--- instance ---@,%a@]@." Determinacy.Instance.pp inst;
  let verdict = unrestricted_determinacy ~max_stages:32 inst in
  Format.printf "unrestricted: %a@." Determinacy.Solver.pp_verdict verdict;
  let fin = finite_determinacy inst in
  Format.printf "finite:       %a@.@." Determinacy.Solver.pp_verdict fin

let () =
  Format.printf "Red Spider Meets a Rainworm — quickstart@.@.";

  (* 1. Composition: the views P2 and P3 determine P5. *)
  describe
    (Determinacy.Instance.make
       ~views:[ ("p2", path 2); ("p3", path 3) ]
       ~q0:(path 5));

  (* 2. Information loss: P2 alone does not determine the edge relation;
     the finite solver exhibits a concrete 2-element counterexample. *)
  describe
    (Determinacy.Instance.make ~views:[ ("p2", path 2) ] ~q0:(path 1));

  (* 3. Evaluating queries directly: a database and its views. *)
  let db = Structure.create () in
  let vs = Array.init 5 (fun i -> Structure.fresh ~name:(Printf.sprintf "v%d" i) db) in
  Array.iteri (fun i _ -> if i < 4 then Structure.add2 db edge vs.(i) vs.(i + 1)) vs;
  Format.printf "database: %a@." Structure.pp_stats db;
  List.iter
    (fun (name, q) ->
      Format.printf "  %s has %d answers@." name (Cq.Eval.count_answers q db))
    [ ("p1", path 1); ("p2", path 2); ("p3", path 3) ];

  (* 4. Query analysis: containment and cores. *)
  let redundant =
    Cq.Query.make ~free:[ "x" ] [ e "x" "y"; e "x" "z"; e "y" "w" ]
  in
  let core = Cq.Containment.core redundant in
  Format.printf "@.core of %a@.  is    %a@." Cq.Query.pp redundant Cq.Query.pp core;
  Format.printf "equivalent: %b@." (Cq.Containment.equivalent redundant core)
