(* Regenerate the paper's figures as Graphviz files.

     dune exec examples/figure_gallery.exe [-- OUTDIR]

   writes fig1.dot (chase(T∞, D_I)), fig3.dot (a rectangular grid with
   its 1-2 pattern), fig4.dot (a square grid, no pattern) and
   worm_chase.dot (chase(T_M, D_I) of the eternal creeper). *)

open Core

let color_of (lab : Greengraph.Label.t) =
  match lab with
  | None -> "gray"
  | Some i when i = Separating.Labels.alpha -> "blue"
  | Some i when i = Separating.Labels.beta0 || i = Separating.Labels.beta1 ->
      "forestgreen"
  | Some i when i = Separating.Labels.eta0 || i = Separating.Labels.eta1 ->
      "orange"
  | Some 1 | Some 2 -> "red" (* the 1-2 pattern *)
  | Some _ -> "black"

let write_dot path g =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Greengraph.Graph.pp_dot ~edge_color:color_of ppf g;
  Format.pp_print_flush ppf ();
  close_out oc;
  Format.printf "  wrote %s (%d edges)@." path (Greengraph.Graph.size g)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "figures" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Format.printf "writing the paper's figures to %s/@." dir;

  (* Figure 1: the T∞ chase *)
  let g1, _, _, _ = Separating.Tinf.chase ~stages:10 () in
  write_dot (Filename.concat dir "fig1.dot") g1;

  (* Figure 3: unequal collision — find the red 1-2 pattern in the output *)
  let _, _, g3 = Separating.Theorem14.collision_outcome ~t:2 ~t':3 () in
  write_dot (Filename.concat dir "fig3.dot") g3;

  (* Figure 4: equal collision, square grids only *)
  let _, _, g4 = Separating.Theorem14.collision_outcome ~t:2 ~t':2 () in
  write_dot (Filename.concat dir "fig4.dot") g4;

  (* Section VIII: the rainworm chase *)
  let wr = Reduction.Worm_rules.of_machine Rainworm.Zoo.eternal_creeper in
  let gw, _, _, _ = Reduction.Worm_rules.chase ~stages:25 wr in
  write_dot (Filename.concat dir "worm_chase.dot") gw;

  Format.printf "render with: dot -Tsvg %s/fig1.dot -o fig1.svg@." dir
